//! The N:M vector-wise sparsity configuration.
//!
//! A configuration `(N, M, L)` means: walk the `k` (row) dimension of the
//! weight matrix `B[k][n]` in *pruning windows* of `M` consecutive rows and
//! `L` consecutive columns; inside each window keep exactly `N` of the `M`
//! row-vectors (each vector is `1×L`). Sparsity is therefore `1 − N/M`
//! regardless of `L`; `L` trades network accuracy (small `L`) against kernel
//! efficiency (large `L`) — paper §III-A.

use crate::error::{NmError, Result};
use serde::{Deserialize, Serialize};

/// Sparsity classification used by the sparsity-aware optimizations.
///
/// The paper defines sparsity below 70% as *moderate* (compute bound on the
/// evaluated GPUs) and above as *high* (memory bound) — §III-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SparsityClass {
    /// `1 − N/M < 0.70`: the non-packing path and the
    /// compute-hides-load pipeline are selected.
    Moderate,
    /// `1 − N/M ≥ 0.70`: the packing path and the
    /// load-hides-compute pipeline are selected.
    High,
}

/// The paper's moderate/high threshold (70%).
pub const SPARSITY_THRESHOLD: f64 = 0.70;

/// An `N:M` vector-wise sparsity configuration with vector length `L`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NmConfig {
    /// Vectors kept per pruning window.
    pub n: usize,
    /// Window depth along `k`.
    pub m: usize,
    /// Vector length along the `n` dimension.
    pub l: usize,
}

impl NmConfig {
    /// Validated constructor. Requires `1 ≤ N ≤ M`, `M ≥ 1`, `L ≥ 1`.
    pub fn new(n: usize, m: usize, l: usize) -> Result<Self> {
        if n == 0 || m == 0 || l == 0 {
            return Err(NmError::InvalidConfig {
                reason: format!("N, M, L must all be positive (got N={n}, M={m}, L={l})"),
            });
        }
        if n > m {
            return Err(NmError::InvalidConfig {
                reason: format!("N must not exceed M (got N={n}, M={m})"),
            });
        }
        Ok(Self { n, m, l })
    }

    /// The dense configuration used for the paper's 0%-sparsity experiments
    /// (`N = M = 32`), with vector length `l`.
    pub fn dense32(l: usize) -> Self {
        Self { n: 32, m: 32, l }
    }

    /// Fraction of `B` that is pruned away: `1 − N/M`.
    #[inline]
    pub fn sparsity(&self) -> f64 {
        1.0 - self.n as f64 / self.m as f64
    }

    /// Fraction of `B` that survives pruning: `N/M`.
    #[inline]
    pub fn density(&self) -> f64 {
        self.n as f64 / self.m as f64
    }

    /// Ideal speedup over dense GEMM from the computation reduction: `M/N`.
    #[inline]
    pub fn ideal_speedup(&self) -> f64 {
        self.m as f64 / self.n as f64
    }

    /// Moderate/high classification against [`SPARSITY_THRESHOLD`].
    pub fn class(&self) -> SparsityClass {
        if self.sparsity() >= SPARSITY_THRESHOLD {
            SparsityClass::High
        } else {
            SparsityClass::Moderate
        }
    }

    /// Compressed row count `w = ⌈k·N/M⌉` for a `k`-row dense matrix
    /// (exact `k·N/M` when `M | k`, matching the paper's padding rule).
    pub fn compressed_rows(&self, k: usize) -> usize {
        let k_padded = k.div_ceil(self.m) * self.m;
        k_padded / self.m * self.n
    }

    /// Number of pruning windows along the column dimension:
    /// `q = ⌈n/L⌉`.
    pub fn window_cols(&self, n: usize) -> usize {
        n.div_ceil(self.l)
    }

    /// Number of pruning windows along the `k` dimension: `⌈k/M⌉`.
    pub fn window_rows(&self, k: usize) -> usize {
        k.div_ceil(self.m)
    }

    /// Bits needed to store one index entry: `⌈log₂ M⌉` (at least 1).
    pub fn index_bits(&self) -> u32 {
        if self.m <= 1 {
            1
        } else {
            usize::BITS - (self.m - 1).leading_zeros()
        }
    }

    /// The four sparsity levels benchmarked throughout the paper
    /// (50%, 62.5%, 75%, 87.5%), expressed at window depth `m = 16` with
    /// vector length `l`.
    pub fn paper_levels(l: usize) -> [NmConfig; 4] {
        [
            NmConfig { n: 8, m: 16, l }, // 50.0%
            NmConfig { n: 6, m: 16, l }, // 62.5%
            NmConfig { n: 4, m: 16, l }, // 75.0%
            NmConfig { n: 2, m: 16, l }, // 87.5%
        ]
    }

    /// Short human-readable form, e.g. `2:4(L=4)`.
    pub fn label(&self) -> String {
        format!("{}:{}(L={})", self.n, self.m, self.l)
    }
}

impl std::fmt::Display for NmConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{} (L={})", self.n, self.m, self.l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_validation() {
        assert!(NmConfig::new(2, 4, 4).is_ok());
        assert!(NmConfig::new(4, 4, 1).is_ok(), "dense N=M is legal");
        assert!(NmConfig::new(0, 4, 4).is_err());
        assert!(NmConfig::new(2, 0, 4).is_err());
        assert!(NmConfig::new(2, 4, 0).is_err());
        assert!(NmConfig::new(5, 4, 4).is_err(), "N>M must be rejected");
    }

    #[test]
    fn sparsity_levels() {
        assert_eq!(NmConfig::new(2, 4, 4).unwrap().sparsity(), 0.5);
        assert_eq!(NmConfig::new(6, 16, 4).unwrap().sparsity(), 0.625);
        assert_eq!(NmConfig::new(4, 16, 4).unwrap().sparsity(), 0.75);
        assert_eq!(NmConfig::new(2, 16, 4).unwrap().sparsity(), 0.875);
        assert_eq!(NmConfig::dense32(4).sparsity(), 0.0);
    }

    #[test]
    fn classification_threshold() {
        assert_eq!(
            NmConfig::new(2, 4, 4).unwrap().class(),
            SparsityClass::Moderate
        );
        assert_eq!(
            NmConfig::new(6, 16, 4).unwrap().class(),
            SparsityClass::Moderate
        );
        assert_eq!(
            NmConfig::new(4, 16, 4).unwrap().class(),
            SparsityClass::High
        );
        assert_eq!(
            NmConfig::new(2, 16, 4).unwrap().class(),
            SparsityClass::High
        );
        // Exactly 70% is high per the >= convention.
        assert_eq!(
            NmConfig::new(3, 10, 1).unwrap().class(),
            SparsityClass::High
        );
    }

    #[test]
    fn compressed_rows_with_and_without_padding() {
        let cfg = NmConfig::new(2, 4, 4).unwrap();
        assert_eq!(cfg.compressed_rows(16), 8);
        // 17 rows pad to 20 -> 5 windows -> 10 compressed rows.
        assert_eq!(cfg.compressed_rows(17), 10);
        assert_eq!(cfg.window_rows(16), 4);
        assert_eq!(cfg.window_rows(17), 5);
    }

    #[test]
    fn window_cols_padding() {
        let cfg = NmConfig::new(2, 4, 8).unwrap();
        assert_eq!(cfg.window_cols(64), 8);
        assert_eq!(cfg.window_cols(65), 9);
    }

    #[test]
    fn index_bits_matches_log2_ceiling() {
        assert_eq!(NmConfig::new(1, 2, 1).unwrap().index_bits(), 1);
        assert_eq!(NmConfig::new(2, 4, 1).unwrap().index_bits(), 2);
        assert_eq!(NmConfig::new(2, 16, 1).unwrap().index_bits(), 4);
        assert_eq!(NmConfig::new(2, 5, 1).unwrap().index_bits(), 3);
        assert_eq!(NmConfig::new(1, 1, 1).unwrap().index_bits(), 1);
        assert_eq!(NmConfig::dense32(1).index_bits(), 5);
    }

    #[test]
    fn ideal_speedup_is_m_over_n() {
        assert_eq!(NmConfig::new(2, 16, 4).unwrap().ideal_speedup(), 8.0);
        assert_eq!(NmConfig::new(8, 16, 4).unwrap().ideal_speedup(), 2.0);
    }

    #[test]
    fn paper_levels_cover_expected_sparsities() {
        let levels = NmConfig::paper_levels(4);
        let got: Vec<f64> = levels.iter().map(|c| c.sparsity()).collect();
        assert_eq!(got, vec![0.5, 0.625, 0.75, 0.875]);
        assert!(levels.iter().all(|c| c.l == 4));
    }

    #[test]
    fn display_and_label() {
        let cfg = NmConfig::new(2, 4, 8).unwrap();
        assert_eq!(cfg.label(), "2:4(L=8)");
        assert_eq!(format!("{cfg}"), "2:4 (L=8)");
    }
}
