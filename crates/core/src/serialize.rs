//! Binary serialization of the compressed N:M format.
//!
//! A deployment-oriented container: magic + version header, the `N:M (L)`
//! configuration, logical shape, bit-packed index matrix and raw `f32`
//! values, each section length-prefixed and validated on load. The decoder
//! rejects truncated buffers, bad magic, unsupported versions, inconsistent
//! shapes and non-canonical index matrices — loading untrusted bytes can
//! fail loudly but never produce a structurally invalid matrix.

use crate::error::{NmError, Result};
use crate::index::IndexMatrix;
use crate::matrix::MatrixF32;
use crate::pattern::NmConfig;
use crate::sparse::NmSparseMatrix;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// File magic: `NMSP`.
pub const MAGIC: [u8; 4] = *b"NMSP";
/// Current container version.
pub const VERSION: u16 = 1;

/// Serialize a compressed matrix into a standalone binary blob.
pub fn to_bytes(sb: &NmSparseMatrix) -> Bytes {
    let cfg = sb.cfg();
    let (w, q) = (sb.w(), sb.q());
    let packed_idx = sb.indices().bit_pack(cfg);
    let values = sb.values().as_slice();

    let mut buf = BytesMut::with_capacity(32 + packed_idx.len() + values.len() * 4);
    buf.put_slice(&MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u16_le(0); // reserved flags
    buf.put_u32_le(cfg.n as u32);
    buf.put_u32_le(cfg.m as u32);
    buf.put_u32_le(cfg.l as u32);
    buf.put_u64_le(sb.k() as u64);
    buf.put_u64_le(sb.cols() as u64);
    buf.put_u64_le(packed_idx.len() as u64);
    buf.put_slice(&packed_idx);
    buf.put_u64_le(values.len() as u64);
    for v in values {
        buf.put_f32_le(*v);
    }
    let _ = (w, q); // shapes are derivable; kept for readability
    buf.freeze()
}

/// Deserialize and fully validate a blob produced by [`to_bytes`].
pub fn from_bytes(mut data: &[u8]) -> Result<NmSparseMatrix> {
    let fail = |reason: &str| NmError::InvalidConfig {
        reason: format!("deserialize: {reason}"),
    };
    let need = |data: &[u8], n: usize, what: &str| {
        if data.remaining() < n {
            Err(fail(&format!("truncated before {what}")))
        } else {
            Ok(())
        }
    };

    need(data, 8, "header")?;
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if magic != MAGIC {
        return Err(fail("bad magic"));
    }
    let version = data.get_u16_le();
    if version != VERSION {
        return Err(fail(&format!("unsupported version {version}")));
    }
    let _flags = data.get_u16_le();

    need(data, 12 + 16, "config")?;
    let n_keep = data.get_u32_le() as usize;
    let m_win = data.get_u32_le() as usize;
    let l = data.get_u32_le() as usize;
    let cfg = NmConfig::new(n_keep, m_win, l)?;
    let k = data.get_u64_le() as usize;
    let n = data.get_u64_le() as usize;

    let w = cfg.compressed_rows(k);
    let q = cfg.window_cols(n);

    need(data, 8, "index length")?;
    let idx_len = data.get_u64_le() as usize;
    let expect_idx = (w * q * cfg.index_bits() as usize).div_ceil(8);
    if idx_len != expect_idx {
        return Err(fail(&format!(
            "index section is {idx_len} bytes, expected {expect_idx}"
        )));
    }
    need(data, idx_len, "index payload")?;
    let mut packed = vec![0u8; idx_len];
    data.copy_to_slice(&mut packed);
    let indices = IndexMatrix::bit_unpack(&packed, w, q, cfg)?;
    indices.validate(cfg)?;

    need(data, 8, "values length")?;
    let val_len = data.get_u64_le() as usize;
    if val_len != w * n {
        return Err(fail(&format!(
            "values section holds {val_len} floats, expected {}",
            w * n
        )));
    }
    need(data, val_len * 4, "values payload")?;
    let mut values = Vec::with_capacity(val_len);
    for _ in 0..val_len {
        values.push(data.get_f32_le());
    }

    // Rebuild through the validating constructor: decompress is not needed,
    // compress() re-checks the canonical form.
    let rebuilt = NmSparseMatrix::compress(
        &reassemble_dense(&values, &indices, cfg, k, n),
        cfg,
        indices,
    )?;
    Ok(rebuilt)
}

/// Expand values+indices to the dense matrix so the validating `compress`
/// constructor can rebuild the sparse form losslessly.
fn reassemble_dense(
    values: &[f32],
    indices: &IndexMatrix,
    cfg: NmConfig,
    k: usize,
    n: usize,
) -> MatrixF32 {
    let mut out = MatrixF32::zeros(k, n);
    let (w, q) = (indices.w(), indices.q());
    for u in 0..w {
        let base = u / cfg.n * cfg.m;
        for j in 0..q {
            let dst_row = base + indices.get(u, j) as usize;
            if dst_row >= k {
                continue;
            }
            let lo = j * cfg.l;
            let hi = ((j + 1) * cfg.l).min(n);
            out.row_mut(dst_row)[lo..hi].copy_from_slice(&values[u * n + lo..u * n + hi]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prune::PrunePolicy;

    fn sample(seed: u64) -> NmSparseMatrix {
        let cfg = NmConfig::new(2, 16, 8).unwrap();
        let b = MatrixF32::random(64, 48, seed);
        NmSparseMatrix::prune(&b, cfg, PrunePolicy::Random { seed }).unwrap()
    }

    #[test]
    fn round_trip_is_lossless() {
        let sb = sample(1);
        let blob = to_bytes(&sb);
        let back = from_bytes(&blob).unwrap();
        assert_eq!(back.cfg(), sb.cfg());
        assert_eq!(back.k(), sb.k());
        assert_eq!(back.cols(), sb.cols());
        assert_eq!(back.values(), sb.values());
        assert_eq!(back.indices(), sb.indices());
    }

    #[test]
    fn round_trip_with_padding_shapes() {
        let cfg = NmConfig::new(2, 4, 4).unwrap();
        let b = MatrixF32::random(17, 13, 5); // both axes ragged
        let sb = NmSparseMatrix::prune_magnitude(&b, cfg).unwrap();
        let back = from_bytes(&to_bytes(&sb)).unwrap();
        assert_eq!(back.values(), sb.values());
        assert_eq!(back.decompress(), sb.decompress());
    }

    #[test]
    fn rejects_bad_magic() {
        let sb = sample(2);
        let mut blob = to_bytes(&sb).to_vec();
        blob[0] = b'X';
        let err = from_bytes(&blob).unwrap_err();
        assert!(err.to_string().contains("bad magic"), "{err}");
    }

    #[test]
    fn rejects_unsupported_version() {
        let sb = sample(3);
        let mut blob = to_bytes(&sb).to_vec();
        blob[4] = 99;
        assert!(from_bytes(&blob)
            .unwrap_err()
            .to_string()
            .contains("version"));
    }

    #[test]
    fn rejects_truncation_at_every_boundary() {
        let sb = sample(4);
        let blob = to_bytes(&sb);
        // Cut the blob at a spread of lengths — all must fail, never panic.
        for cut in [0usize, 3, 7, 11, 19, 27, 35, 43, blob.len() - 1] {
            assert!(
                from_bytes(&blob[..cut]).is_err(),
                "cut at {cut} must be rejected"
            );
        }
    }

    #[test]
    fn rejects_corrupt_index_payload() {
        let sb = sample(5);
        let blob = to_bytes(&sb).to_vec();
        // Flip bits across the index section; the canonical-form validator
        // (strictly increasing offsets per window) must catch corruption.
        let idx_start = 40; // header(8) + cfg(12) + dims(16) + len(8) = 44... locate by construction
        let mut rejected = 0;
        for i in 0..16 {
            let mut bad = blob.clone();
            let pos = idx_start + 4 + i;
            if pos < bad.len() {
                bad[pos] ^= 0xFF;
            }
            if from_bytes(&bad).is_err() {
                rejected += 1;
            }
        }
        assert!(
            rejected > 8,
            "most index corruptions must be detected (got {rejected}/16)"
        );
    }

    #[test]
    fn rejects_inconsistent_lengths() {
        let sb = sample(6);
        let mut blob = to_bytes(&sb).to_vec();
        // Lie about the index length field (offset 36 = 8+12+16).
        blob[36] ^= 0x01;
        assert!(from_bytes(&blob).is_err());
    }

    #[test]
    fn dense_config_round_trips() {
        let cfg = NmConfig::new(4, 4, 2).unwrap();
        let b = MatrixF32::random(16, 8, 7);
        let sb = NmSparseMatrix::prune_magnitude(&b, cfg).unwrap();
        let back = from_bytes(&to_bytes(&sb)).unwrap();
        assert_eq!(back.decompress(), b);
    }

    #[test]
    fn blob_is_compact() {
        let sb = sample(8);
        let blob = to_bytes(&sb);
        // values dominate: w*n floats + small header/indices.
        let floor = sb.values().as_slice().len() * 4;
        assert!(blob.len() >= floor);
        assert!(blob.len() < floor + floor / 4 + 64);
    }
}
