//! Vector-selection strategies (pruning policies).
//!
//! A pruner inspects the dense weight matrix `B[k][n]` and, for every
//! pruning window (`M` rows × `L` cols), decides which `N` row-vectors to
//! keep. The output is a canonical [`IndexMatrix`] (offsets strictly
//! increasing within each window) that [`crate::sparse::NmSparseMatrix`]
//! uses to compress `B`.
//!
//! The paper's algorithm-side contract ("naive N:M pattern", §II-B) is that
//! *any* selection rule may be plugged in — magnitude pruning is what the
//! sparse-network literature uses, random and strided selections are useful
//! for benchmarking because they bound the packing ratio from both sides
//! (§III-C1: identical window patterns minimize the packed footprint to
//! `N/M`; independent random patterns maximize it).

use crate::index::IndexMatrix;
use crate::matrix::MatrixF32;
use crate::pattern::NmConfig;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Which rule picks the `N` surviving vectors per window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrunePolicy {
    /// Keep the `N` vectors with the largest L2 norm (ties broken by the
    /// lower offset) — the standard magnitude criterion.
    Magnitude,
    /// Keep a uniformly random `N`-subset, independently per window.
    /// Worst case for the packing path.
    Random {
        /// RNG seed (deterministic selections for reproducible runs).
        seed: u64,
    },
    /// Keep offsets `{0, ⌊M/N⌋, 2⌊M/N⌋, …}` — identical in every window.
    /// Best case for the packing path.
    Strided,
    /// Keep the first `N` offsets `{0, 1, …, N−1}` of every window.
    FirstN,
}

/// Compute the selection for `b` under `cfg` with the given `policy`.
///
/// Shapes follow the paper's padding rule: the result always has
/// `w = ⌈k/M⌉·N` rows and `q = ⌈n/L⌉` columns; windows that extend past the
/// matrix edge behave as if `b` were zero-padded.
pub fn select(b: &MatrixF32, cfg: NmConfig, policy: PrunePolicy) -> IndexMatrix {
    let (k, n) = b.shape();
    let windows_k = cfg.window_rows(k);
    let q = cfg.window_cols(n);
    let w = windows_k * cfg.n;
    let mut d = IndexMatrix::zeros(w, q);

    let mut rng = match policy {
        PrunePolicy::Random { seed } => Some(StdRng::seed_from_u64(seed)),
        _ => None,
    };
    let mut offsets: Vec<u8> = (0..cfg.m as u8).collect();

    for wi in 0..windows_k {
        for wj in 0..q {
            let chosen: Vec<u8> = match policy {
                PrunePolicy::Magnitude => {
                    let mut scored: Vec<(f64, u8)> = (0..cfg.m)
                        .map(|t| {
                            let row = wi * cfg.m + t;
                            let norm: f64 = if row < k {
                                let lo = wj * cfg.l;
                                let hi = ((wj + 1) * cfg.l).min(n);
                                b.row(row)[lo..hi]
                                    .iter()
                                    .map(|v| (*v as f64) * (*v as f64))
                                    .sum()
                            } else {
                                0.0 // padded rows have zero norm
                            };
                            (norm, t as u8)
                        })
                        .collect();
                    // Sort descending by norm, ascending offset on ties.
                    scored.sort_by(|a, b| {
                        b.0.partial_cmp(&a.0)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(a.1.cmp(&b.1))
                    });
                    let mut kept: Vec<u8> = scored[..cfg.n].iter().map(|s| s.1).collect();
                    kept.sort_unstable();
                    kept
                }
                PrunePolicy::Random { .. } => {
                    let rng = rng.as_mut().expect("rng initialized for Random policy");
                    offsets.shuffle(rng);
                    let mut kept: Vec<u8> = offsets[..cfg.n].to_vec();
                    kept.sort_unstable();
                    kept
                }
                PrunePolicy::Strided => {
                    let stride = cfg.m / cfg.n;
                    (0..cfg.n)
                        .map(|r| (r * stride.max(1)).min(cfg.m - 1) as u8)
                        .collect()
                }
                PrunePolicy::FirstN => (0..cfg.n as u8).collect(),
            };
            for (r, off) in chosen.iter().enumerate() {
                d.set(wi * cfg.n + r, wj, *off);
            }
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: usize, m: usize, l: usize) -> NmConfig {
        NmConfig::new(n, m, l).unwrap()
    }

    #[test]
    fn all_policies_produce_canonical_selections() {
        let b = MatrixF32::random(32, 24, 3);
        for policy in [
            PrunePolicy::Magnitude,
            PrunePolicy::Random { seed: 7 },
            PrunePolicy::Strided,
            PrunePolicy::FirstN,
        ] {
            for c in [cfg(2, 4, 4), cfg(2, 16, 8), cfg(6, 16, 4), cfg(1, 8, 2)] {
                let d = select(&b, c, policy);
                assert_eq!(d.w(), c.compressed_rows(32));
                assert_eq!(d.q(), c.window_cols(24));
                d.validate(c)
                    .unwrap_or_else(|e| panic!("{policy:?}/{c}: {e}"));
            }
        }
    }

    #[test]
    fn magnitude_keeps_the_heavy_vectors() {
        // One window, M=4, L=2, n=2: rows 1 and 3 carry the weight.
        let mut b = MatrixF32::zeros(4, 2);
        b.row_mut(1).copy_from_slice(&[5.0, 5.0]);
        b.row_mut(3).copy_from_slice(&[2.0, -2.0]);
        let d = select(&b, cfg(2, 4, 2), PrunePolicy::Magnitude);
        assert_eq!(d.get(0, 0), 1);
        assert_eq!(d.get(1, 0), 3);
    }

    #[test]
    fn magnitude_is_per_window_column() {
        // Two column windows with different heavy rows.
        let mut b = MatrixF32::zeros(4, 4);
        // cols 0..2 -> rows {0,1} heavy; cols 2..4 -> rows {2,3} heavy.
        b.row_mut(0)[0] = 9.0;
        b.row_mut(1)[1] = 9.0;
        b.row_mut(2)[2] = 9.0;
        b.row_mut(3)[3] = 9.0;
        let d = select(&b, cfg(2, 4, 2), PrunePolicy::Magnitude);
        assert_eq!((d.get(0, 0), d.get(1, 0)), (0, 1));
        assert_eq!((d.get(0, 1), d.get(1, 1)), (2, 3));
    }

    #[test]
    fn magnitude_tie_break_prefers_low_offsets() {
        let b = MatrixF32::zeros(4, 4); // all ties
        let d = select(&b, cfg(2, 4, 4), PrunePolicy::Magnitude);
        assert_eq!((d.get(0, 0), d.get(1, 0)), (0, 1));
    }

    #[test]
    fn random_is_reproducible() {
        let b = MatrixF32::random(64, 32, 5);
        let c = cfg(4, 16, 4);
        let d1 = select(&b, c, PrunePolicy::Random { seed: 11 });
        let d2 = select(&b, c, PrunePolicy::Random { seed: 11 });
        let d3 = select(&b, c, PrunePolicy::Random { seed: 12 });
        assert_eq!(d1, d2);
        assert_ne!(d1, d3);
    }

    #[test]
    fn strided_pattern_is_identical_across_windows() {
        let b = MatrixF32::random(32, 32, 1);
        let c = cfg(4, 16, 4);
        let d = select(&b, c, PrunePolicy::Strided);
        for u in 0..d.w() {
            for j in 1..d.q() {
                assert_eq!(d.get(u, j), d.get(u, 0));
            }
        }
        // offsets are 0,4,8,12
        assert_eq!(
            (0..4).map(|r| d.get(r, 0)).collect::<Vec<_>>(),
            vec![0, 4, 8, 12]
        );
    }

    #[test]
    fn padded_rows_lose_to_real_rows_under_magnitude() {
        // k=5 with M=4: second window has 1 real row (row 4) + 3 padded.
        let mut b = MatrixF32::zeros(5, 2);
        b.row_mut(4).copy_from_slice(&[1.0, 1.0]);
        let d = select(&b, cfg(2, 4, 2), PrunePolicy::Magnitude);
        assert_eq!(d.w(), 4);
        // Window 1 rows are d[2], d[3]; offset 0 (the real row) must be kept.
        assert_eq!(d.get(2, 0), 0);
    }

    #[test]
    fn dense_n_equals_m_keeps_everything() {
        let b = MatrixF32::random(8, 8, 2);
        let c = cfg(4, 4, 4);
        for policy in [
            PrunePolicy::Magnitude,
            PrunePolicy::FirstN,
            PrunePolicy::Strided,
        ] {
            let d = select(&b, c, policy);
            for u in 0..d.w() {
                assert_eq!(d.get(u, 0) as usize, u % 4, "{policy:?}");
            }
        }
    }
}
