//! Channel permutation for N:M pruning (Pool & Yu, NeurIPS'21 — the
//! paper's reference \[32\], cited as directly composable with NM-SpMM's
//! "naive N:M pattern").
//!
//! N:M pruning keeps the `N` largest vectors of every window of `M`
//! *consecutive* `k`-rows. When large-magnitude rows cluster inside a
//! window, good weights are discarded while weak windows keep junk.
//! Permuting the `k` dimension (rows of `B`, columns of `A` — a free
//! transformation for a linear layer as long as both sides apply it)
//! redistributes magnitude across windows and provably increases the
//! retained norm.
//!
//! This module implements the greedy channel-swap search: repeatedly find
//! the pair of rows in different windows whose exchange most increases the
//! total retained magnitude, until no improving swap exists (a local
//! optimum of the bipartite exchange neighbourhood, the same neighbourhood
//! Pool & Yu search).

use crate::matrix::MatrixF32;
use crate::pattern::NmConfig;
use serde::{Deserialize, Serialize};

/// A permutation of the `k` dimension plus its bookkeeping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelPermutation {
    /// `perm[new_row] = old_row`; apply to `B` rows and `A` columns.
    pub perm: Vec<usize>,
    /// Retained squared magnitude before permutation.
    pub retained_before: f64,
    /// Retained squared magnitude after permutation.
    pub retained_after: f64,
    /// Swaps performed by the greedy search.
    pub swaps: usize,
}

impl ChannelPermutation {
    /// The identity permutation for a `k`-row matrix (no search).
    pub fn identity(k: usize) -> Self {
        Self {
            perm: (0..k).collect(),
            retained_before: 0.0,
            retained_after: 0.0,
            swaps: 0,
        }
    }

    /// Relative improvement of retained magnitude, `after/before − 1`.
    pub fn improvement(&self) -> f64 {
        if self.retained_before == 0.0 {
            0.0
        } else {
            self.retained_after / self.retained_before - 1.0
        }
    }

    /// Apply to the rows of `B` (`k × n`).
    pub fn apply_to_b(&self, b: &MatrixF32) -> MatrixF32 {
        assert_eq!(b.rows(), self.perm.len(), "permutation length mismatch");
        let mut out = MatrixF32::zeros(b.rows(), b.cols());
        for (new_row, &old_row) in self.perm.iter().enumerate() {
            out.row_mut(new_row).copy_from_slice(b.row(old_row));
        }
        out
    }

    /// Apply to the columns of `A` (`m × k`) so that `A′ · B′ = A · B`.
    pub fn apply_to_a(&self, a: &MatrixF32) -> MatrixF32 {
        assert_eq!(a.cols(), self.perm.len(), "permutation length mismatch");
        let mut out = MatrixF32::zeros(a.rows(), a.cols());
        for i in 0..a.rows() {
            let src = a.row(i);
            let dst = out.row_mut(i);
            for (new_col, &old_col) in self.perm.iter().enumerate() {
                dst[new_col] = src[old_col];
            }
        }
        out
    }
}

/// Per-row "salience": squared L2 norm of each `k`-row of `B`.
fn row_norms(b: &MatrixF32) -> Vec<f64> {
    (0..b.rows())
        .map(|i| b.row(i).iter().map(|v| (*v as f64) * (*v as f64)).sum())
        .collect()
}

/// Retained squared magnitude of one window under row-wise N:M selection:
/// the sum of the `N` largest salience values among the window's rows.
fn window_retained(norms: &[f64], rows: &[usize], n_keep: usize) -> f64 {
    let mut vals: Vec<f64> = rows.iter().map(|&r| norms[r]).collect();
    vals.sort_by(|a, b| b.total_cmp(a));
    vals.iter().take(n_keep).sum()
}

/// Greedy channel-permutation search.
///
/// Approximates the selection with row granularity (`L = n`), the setting
/// Pool & Yu analyze; the resulting permutation still helps vector-wise
/// selections because per-window column patterns correlate with row norms.
/// `max_rounds` bounds the outer sweeps (each sweep is `O(k²/M)` pair
/// evaluations).
pub fn search(b: &MatrixF32, cfg: NmConfig, max_rounds: usize) -> ChannelPermutation {
    let k = b.rows();
    let norms0 = row_norms(b);
    let windows = cfg.window_rows(k);
    let mut perm: Vec<usize> = (0..k).collect();

    // Window membership in terms of *current* positions.
    let window_rows = |wi: usize, perm: &[usize]| -> Vec<usize> {
        (wi * cfg.m..((wi + 1) * cfg.m).min(k))
            .map(|pos| perm[pos])
            .collect()
    };
    let total = |perm: &[usize]| -> f64 {
        (0..windows)
            .map(|wi| window_retained(&norms0, &window_rows(wi, perm), cfg.n))
            .sum()
    };

    let before = total(&perm);
    let mut current = before;
    let mut swaps = 0usize;

    for _ in 0..max_rounds {
        let mut improved = false;
        for wa in 0..windows {
            for wb in (wa + 1)..windows {
                // Best single swap between windows wa and wb.
                let (mut best_gain, mut best_pair) = (1e-12, None);
                let a_lo = wa * cfg.m;
                let a_hi = ((wa + 1) * cfg.m).min(k);
                let b_lo = wb * cfg.m;
                let b_hi = ((wb + 1) * cfg.m).min(k);
                let base = window_retained(&norms0, &window_rows(wa, &perm), cfg.n)
                    + window_retained(&norms0, &window_rows(wb, &perm), cfg.n);
                for pa in a_lo..a_hi {
                    for pb in b_lo..b_hi {
                        perm.swap(pa, pb);
                        let after = window_retained(&norms0, &window_rows(wa, &perm), cfg.n)
                            + window_retained(&norms0, &window_rows(wb, &perm), cfg.n);
                        perm.swap(pa, pb);
                        let gain = after - base;
                        if gain > best_gain {
                            best_gain = gain;
                            best_pair = Some((pa, pb));
                        }
                    }
                }
                if let Some((pa, pb)) = best_pair {
                    perm.swap(pa, pb);
                    current += best_gain;
                    swaps += 1;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }

    ChannelPermutation {
        perm,
        retained_before: before,
        retained_after: current,
        swaps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prune::PrunePolicy;
    use crate::sparse::NmSparseMatrix;
    use crate::spmm::{gemm_reference, spmm_reference};

    fn cfg() -> NmConfig {
        NmConfig::new(2, 4, 8).unwrap()
    }

    /// A matrix engineered so that all heavy rows land in window 0.
    fn clustered(k: usize, n: usize) -> MatrixF32 {
        MatrixF32::from_fn(
            k,
            n,
            |i, _| if i < 4 { 10.0 } else { 0.1 * (i as f32 + 1.0) },
        )
    }

    #[test]
    fn identity_round_trip() {
        let p = ChannelPermutation::identity(8);
        let b = MatrixF32::random(8, 4, 1);
        assert_eq!(p.apply_to_b(&b), b);
        let a = MatrixF32::random(3, 8, 2);
        assert_eq!(p.apply_to_a(&a), a);
    }

    #[test]
    fn permutation_preserves_the_product() {
        let b = MatrixF32::random(16, 8, 3);
        let a = MatrixF32::random(6, 16, 4);
        let p = search(&b, cfg(), 4);
        let ap = p.apply_to_a(&a);
        let bp = p.apply_to_b(&b);
        let c0 = gemm_reference(&a, &b);
        let c1 = gemm_reference(&ap, &bp);
        assert!(
            c1.allclose(&c0, 1e-4, 1e-5),
            "permutation must not change A·B: max diff {}",
            c1.max_abs_diff(&c0)
        );
    }

    #[test]
    fn search_improves_clustered_magnitude() {
        let b = clustered(16, 8);
        let p = search(&b, cfg(), 8);
        assert!(
            p.retained_after > p.retained_before * 1.2,
            "clustered rows must yield a big win: {} -> {}",
            p.retained_before,
            p.retained_after
        );
        assert!(p.swaps > 0);
        // perm is a valid permutation.
        let mut sorted = p.perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn search_is_a_no_op_on_uniform_rows() {
        let b = MatrixF32::from_fn(16, 8, |_, j| j as f32 + 1.0);
        let p = search(&b, cfg(), 4);
        assert_eq!(p.swaps, 0, "identical rows admit no improving swap");
        assert!((p.improvement()).abs() < 1e-12);
    }

    #[test]
    fn permuted_pruning_has_lower_error() {
        // End-to-end: permute, prune, multiply — the approximation against
        // the dense product must improve for clustered magnitudes.
        let b = clustered(32, 16);
        let a = MatrixF32::random(8, 32, 5);
        let c_exact = gemm_reference(&a, &b);
        let cfg = NmConfig::new(2, 8, 16).unwrap();

        let sb_plain = NmSparseMatrix::prune(&b, cfg, PrunePolicy::Magnitude).unwrap();
        let err_plain = spmm_reference(&a, &sb_plain).rel_frobenius_error(&c_exact);

        let p = search(&b, cfg, 8);
        let bp = p.apply_to_b(&b);
        let ap = p.apply_to_a(&a);
        let sb_perm = NmSparseMatrix::prune(&bp, cfg, PrunePolicy::Magnitude).unwrap();
        let err_perm = spmm_reference(&ap, &sb_perm).rel_frobenius_error(&c_exact);

        assert!(
            err_perm < err_plain,
            "permutation must reduce approximation error: {err_perm} !< {err_plain}"
        );
    }

    #[test]
    fn ragged_k_is_handled() {
        let b = MatrixF32::random(18, 8, 6); // 18 rows, M=4 -> ragged window
        let p = search(&b, NmConfig::new(2, 4, 8).unwrap(), 2);
        let mut sorted = p.perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..18).collect::<Vec<_>>());
    }
}
