//! Dense row-major `f32` matrix used throughout the workspace.
//!
//! Deliberately minimal: NM-SpMM only needs row-major dense storage with
//! cheap row slicing, seeded random fills and a handful of elementwise
//! helpers. Anything heavier (BLAS traits, views, strides) would obscure the
//! kernels built on top.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Dense row-major matrix of `f32`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatrixF32 {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl MatrixF32 {
    /// Zero-filled `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from an existing row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Build by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Matrix with entries drawn uniformly from `[-1, 1)`, reproducible for a
    /// given `seed`.
    pub fn random(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
        Self { rows, cols, data }
    }

    /// Identity-like matrix (ones on the main diagonal, zero elsewhere);
    /// works for non-square shapes.
    pub fn eye(rows: usize, cols: usize) -> Self {
        Self::from_fn(rows, cols, |i, j| if i == j { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow the backing row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the backing row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume and return the backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Out-of-place transpose.
    pub fn transpose(&self) -> Self {
        let mut t = Self::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        t
    }

    /// Zero-pad to `new_rows × new_cols` (both must be ≥ current shape).
    pub fn pad_to(&self, new_rows: usize, new_cols: usize) -> Self {
        assert!(new_rows >= self.rows && new_cols >= self.cols);
        let mut out = Self::zeros(new_rows, new_cols);
        for i in 0..self.rows {
            out.data[i * new_cols..i * new_cols + self.cols].copy_from_slice(self.row(i));
        }
        out
    }

    /// Largest absolute element difference against `other`.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Self) -> f32 {
        assert_eq!(
            self.shape(),
            other.shape(),
            "shape mismatch in max_abs_diff"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// Relative Frobenius-norm error `‖self − other‖F / ‖other‖F`
    /// (`‖·‖F` computed in f64; returns the absolute norm if `other` is zero).
    pub fn rel_frobenius_error(&self, other: &Self) -> f64 {
        assert_eq!(self.shape(), other.shape(), "shape mismatch");
        let mut num = 0f64;
        let mut den = 0f64;
        for (a, b) in self.data.iter().zip(&other.data) {
            let d = (*a as f64) - (*b as f64);
            num += d * d;
            den += (*b as f64) * (*b as f64);
        }
        if den == 0.0 {
            num.sqrt()
        } else {
            (num / den).sqrt()
        }
    }

    /// `true` when every element differs from `other` by at most
    /// `atol + rtol·|other|` (the usual mixed tolerance test).
    pub fn allclose(&self, other: &Self, rtol: f32, atol: f32) -> bool {
        if self.shape() != other.shape() {
            return false;
        }
        self.data
            .iter()
            .zip(&other.data)
            .all(|(a, b)| (a - b).abs() <= atol + rtol * b.abs())
    }

    /// Count of exactly-zero entries.
    pub fn count_zeros(&self) -> usize {
        self.data.iter().filter(|v| **v == 0.0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_content() {
        let m = MatrixF32::zeros(3, 5);
        assert_eq!(m.shape(), (3, 5));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_fn_row_major_ordering() {
        let m = MatrixF32::from_fn(2, 3, |i, j| (i * 10 + j) as f32);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(m.get(1, 2), 12.0);
    }

    #[test]
    fn random_is_reproducible_and_seed_sensitive() {
        let a = MatrixF32::random(4, 4, 42);
        let b = MatrixF32::random(4, 4, 42);
        let c = MatrixF32::random(4, 4, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.as_slice().iter().all(|v| (-1.0..1.0).contains(v)));
    }

    #[test]
    fn transpose_round_trip() {
        let m = MatrixF32::random(5, 7, 1);
        let tt = m.transpose().transpose();
        assert_eq!(m, tt);
        assert_eq!(m.transpose().shape(), (7, 5));
        assert_eq!(m.get(2, 4), m.transpose().get(4, 2));
    }

    #[test]
    fn pad_preserves_content_and_zero_fills() {
        let m = MatrixF32::from_fn(2, 2, |i, j| (i + j) as f32 + 1.0);
        let p = m.pad_to(3, 4);
        assert_eq!(p.get(0, 0), 1.0);
        assert_eq!(p.get(1, 1), 3.0);
        assert_eq!(p.get(2, 3), 0.0);
        assert_eq!(p.get(0, 2), 0.0);
    }

    #[test]
    fn row_slices_match_elements() {
        let m = MatrixF32::random(4, 6, 9);
        for i in 0..4 {
            for j in 0..6 {
                assert_eq!(m.row(i)[j], m.get(i, j));
            }
        }
    }

    #[test]
    fn allclose_tolerances() {
        let a = MatrixF32::from_vec(1, 2, vec![1.0, 2.0]);
        let b = MatrixF32::from_vec(1, 2, vec![1.0 + 1e-6, 2.0 - 1e-6]);
        assert!(a.allclose(&b, 1e-5, 0.0));
        assert!(!a.allclose(&b, 0.0, 1e-8));
        let c = MatrixF32::zeros(2, 1);
        assert!(!a.allclose(&c, 1.0, 1.0), "shape mismatch must fail");
    }

    #[test]
    fn eye_rectangular() {
        let m = MatrixF32::eye(2, 3);
        assert_eq!(m.as_slice(), &[1.0, 0.0, 0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn rel_frobenius_error_zero_for_identical() {
        let a = MatrixF32::random(3, 3, 7);
        assert_eq!(a.rel_frobenius_error(&a), 0.0);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_rejects_bad_length() {
        let _ = MatrixF32::from_vec(2, 2, vec![0.0; 3]);
    }
}
