//! The index matrix `D` and its storage layouts.
//!
//! `D` has shape `w × q` (`w = k·N/M` compressed rows, `q = ⌈n/L⌉` pruning
//! windows per row). Entry `D[u][j]` is the offset (in `0..M`) of the
//! `u`-th retained vector inside its pruning window, for window column `j`.
//! Within one window (a run of `N` consecutive rows belonging to the same
//! `k`-window) offsets are strictly increasing — the canonical form produced
//! by every pruner in this crate.
//!
//! The paper stores each entry in `⌈log₂ M⌉` bits (§III-B eq. 4 discussion)
//! and transforms the layout during offline pre-processing to reduce global
//! memory transactions (§III-C1, Fig. 4). Both are modeled here:
//! [`IndexMatrix`] is the plain `u8` working representation, and
//! [`IndexMatrix::storage_bytes`] / [`IndexMatrix::bit_pack`] expose the
//! footprint of each [`IndexLayout`].

use crate::error::{NmError, Result};
use crate::pattern::NmConfig;
use serde::{Deserialize, Serialize};

/// Physical layout of `D` in (simulated) global memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IndexLayout {
    /// One byte per entry, row-major — the naive layout.
    RowMajorU8,
    /// One byte per entry, tiled so each thread block reads a contiguous
    /// `ws × qs` panel (the paper's `transformLayout`).
    Blocked {
        /// Block height in compressed rows (`ws`).
        ws: usize,
        /// Block width in pruning windows (`qs`).
        qs: usize,
    },
    /// `⌈log₂ M⌉` bits per entry, bit-packed row-major.
    BitPacked,
}

/// Dense `w × q` matrix of pruning-window offsets (values in `0..M`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndexMatrix {
    w: usize,
    q: usize,
    data: Vec<u8>,
}

impl IndexMatrix {
    /// Zero-filled `w × q` index matrix.
    pub fn zeros(w: usize, q: usize) -> Self {
        Self {
            w,
            q,
            data: vec![0; w * q],
        }
    }

    /// Build from a row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != w * q`.
    pub fn from_vec(w: usize, q: usize, data: Vec<u8>) -> Self {
        assert_eq!(data.len(), w * q, "index buffer length mismatch");
        Self { w, q, data }
    }

    /// Compressed row count `w`.
    #[inline]
    pub fn w(&self) -> usize {
        self.w
    }

    /// Window-column count `q`.
    #[inline]
    pub fn q(&self) -> usize {
        self.q
    }

    /// Entry accessor.
    #[inline]
    pub fn get(&self, u: usize, j: usize) -> u8 {
        debug_assert!(u < self.w && j < self.q);
        self.data[u * self.q + j]
    }

    /// Entry setter.
    #[inline]
    pub fn set(&mut self, u: usize, j: usize, v: u8) {
        debug_assert!(u < self.w && j < self.q);
        self.data[u * self.q + j] = v;
    }

    /// Borrow the raw row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Validate canonical form against `cfg`:
    /// every entry `< M`, and entries strictly increasing within each window
    /// (each run of `N` rows). Returns the first violation found.
    pub fn validate(&self, cfg: NmConfig) -> Result<()> {
        let n = cfg.n;
        let m = cfg.m as u32;
        for u in 0..self.w {
            for j in 0..self.q {
                let v = self.get(u, j) as u32;
                if v >= m {
                    return Err(NmError::CorruptIndex {
                        row: u,
                        col: j,
                        value: v,
                        bound: m,
                    });
                }
                if u % n != 0 {
                    let prev = self.get(u - 1, j) as u32;
                    if v <= prev {
                        return Err(NmError::CorruptIndex {
                            row: u,
                            col: j,
                            value: v,
                            bound: prev + 1, // must be at least prev+1
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Bytes occupied by this matrix under `layout` (for traffic modeling).
    pub fn storage_bytes(&self, cfg: NmConfig, layout: IndexLayout) -> usize {
        match layout {
            IndexLayout::RowMajorU8 => self.w * self.q,
            IndexLayout::Blocked { ws, qs } => {
                // Same byte count, rounded up to whole tiles (panels are padded).
                let tiles_w = self.w.div_ceil(ws);
                let tiles_q = self.q.div_ceil(qs);
                tiles_w * tiles_q * ws * qs
            }
            IndexLayout::BitPacked => {
                let bits = self.w * self.q * cfg.index_bits() as usize;
                bits.div_ceil(8)
            }
        }
    }

    /// Bit-pack into `⌈log₂ M⌉` bits per entry (row-major bit stream).
    pub fn bit_pack(&self, cfg: NmConfig) -> Vec<u8> {
        let bits = cfg.index_bits();
        let total_bits = self.data.len() * bits as usize;
        let mut out = vec![0u8; total_bits.div_ceil(8)];
        let mut bitpos = 0usize;
        for &v in &self.data {
            let mut val = v as u32;
            for _ in 0..bits {
                if val & 1 != 0 {
                    out[bitpos / 8] |= 1 << (bitpos % 8);
                }
                val >>= 1;
                bitpos += 1;
            }
        }
        out
    }

    /// Inverse of [`Self::bit_pack`].
    pub fn bit_unpack(packed: &[u8], w: usize, q: usize, cfg: NmConfig) -> Result<Self> {
        let bits = cfg.index_bits();
        let needed_bits = w * q * bits as usize;
        if packed.len() * 8 < needed_bits {
            return Err(NmError::DimensionMismatch {
                expected: format!("at least {} packed bytes", needed_bits.div_ceil(8)),
                found: format!("{} bytes", packed.len()),
            });
        }
        let mut data = Vec::with_capacity(w * q);
        let mut bitpos = 0usize;
        for _ in 0..w * q {
            let mut val = 0u32;
            for b in 0..bits {
                if packed[bitpos / 8] & (1 << (bitpos % 8)) != 0 {
                    val |= 1 << b;
                }
                bitpos += 1;
            }
            data.push(val as u8);
        }
        Ok(Self { w, q, data })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg24() -> NmConfig {
        NmConfig::new(2, 4, 4).unwrap()
    }

    #[test]
    fn validate_accepts_canonical() {
        // w=4 (two windows of N=2), q=2.
        let d = IndexMatrix::from_vec(4, 2, vec![0, 1, 2, 3, 1, 0, 3, 2]);
        d.validate(cfg24()).unwrap();
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let d = IndexMatrix::from_vec(2, 1, vec![0, 4]);
        let err = d.validate(cfg24()).unwrap_err();
        match err {
            NmError::CorruptIndex {
                row,
                col,
                value,
                bound,
            } => {
                assert_eq!((row, col, value, bound), (1, 0, 4, 4));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn validate_rejects_non_increasing_within_window() {
        // Window rows (0,1): 2 then 2 — not strictly increasing.
        let d = IndexMatrix::from_vec(2, 1, vec![2, 2]);
        assert!(d.validate(cfg24()).is_err());
        // Decreasing also fails.
        let d = IndexMatrix::from_vec(2, 1, vec![3, 1]);
        assert!(d.validate(cfg24()).is_err());
        // But a new window may restart low.
        let d = IndexMatrix::from_vec(4, 1, vec![2, 3, 0, 1]);
        d.validate(cfg24()).unwrap();
    }

    #[test]
    fn bit_pack_round_trip() {
        let cfg = NmConfig::new(2, 16, 4).unwrap(); // 4 bits per entry
        let d = IndexMatrix::from_vec(4, 3, vec![0, 5, 9, 3, 7, 15, 1, 2, 4, 8, 10, 12]);
        let packed = d.bit_pack(cfg);
        assert_eq!(packed.len(), (12 * 4usize).div_ceil(8));
        let back = IndexMatrix::bit_unpack(&packed, 4, 3, cfg).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn bit_pack_round_trip_odd_bits() {
        let cfg = NmConfig::new(2, 5, 1).unwrap(); // M=5 -> 3 bits
        let d = IndexMatrix::from_vec(2, 3, vec![0, 1, 4, 2, 3, 4]);
        let back = IndexMatrix::bit_unpack(&d.bit_pack(cfg), 2, 3, cfg).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn bit_unpack_rejects_short_buffer() {
        let cfg = NmConfig::new(2, 16, 4).unwrap();
        assert!(IndexMatrix::bit_unpack(&[0u8; 1], 4, 4, cfg).is_err());
    }

    #[test]
    fn storage_bytes_by_layout() {
        let cfg = NmConfig::new(2, 16, 4).unwrap(); // 4 bits/entry
        let d = IndexMatrix::zeros(8, 6);
        assert_eq!(d.storage_bytes(cfg, IndexLayout::RowMajorU8), 48);
        assert_eq!(d.storage_bytes(cfg, IndexLayout::BitPacked), 24);
        // 8x6 in 4x4 tiles -> 2x2 tiles of 16 entries.
        assert_eq!(
            d.storage_bytes(cfg, IndexLayout::Blocked { ws: 4, qs: 4 }),
            64
        );
    }

    #[test]
    fn bitpacked_is_never_larger_than_u8() {
        for m in [2usize, 4, 8, 16, 32] {
            let cfg = NmConfig::new(1, m, 1).unwrap();
            let d = IndexMatrix::zeros(16, 16);
            assert!(
                d.storage_bytes(cfg, IndexLayout::BitPacked)
                    <= d.storage_bytes(cfg, IndexLayout::RowMajorU8)
            );
        }
    }
}
