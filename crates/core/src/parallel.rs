//! Multi-threaded CPU implementation of NM-SpMM.
//!
//! This is the "runs on real hardware" counterpart to the simulated GPU
//! kernels: a blocked, rayon-parallel SpMM with both sparsity-aware data
//! paths of paper §III-C —
//!
//! * **non-packing** (moderate sparsity): gather `A` elements directly
//!   through the index matrix, skipping the pre-processing cost, and
//! * **packing** (high sparsity): per (row-block, k-block), copy only the
//!   `col_info` columns of `A` into a dense scratch tile and index it with
//!   the reordered (packed-position) indices, shrinking the hot working set
//!   exactly as the GPU kernel shrinks `As` in shared memory.
//!
//! A blocked parallel dense GEMM ([`gemm_parallel`]) plays the cuBLAS role
//! for wall-clock speedup measurements in the criterion benches.

use crate::colinfo::{preprocess, PackedLayout};
use crate::error::{NmError, Result};
use crate::matrix::MatrixF32;
use crate::pattern::SparsityClass;
use crate::sparse::NmSparseMatrix;
use rayon::prelude::*;

/// Which data path to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Pick by sparsity class: packing at high sparsity, otherwise direct.
    Auto,
    /// Always pack `A` tiles through `col_info`.
    Packing,
    /// Always gather directly from `A`.
    NonPacking,
}

/// Tuning knobs for [`spmm_parallel`].
///
/// Prefer [`CpuSpmmOptions::new`], which validates the block sizes up
/// front. The fields stay public for struct-update syntax; a zero
/// `row_block` smuggled in that way is not an error — it is clamped to 1 in
/// exactly one place, [`CpuSpmmOptions::task_rows`], which every kernel
/// entry point uses.
#[derive(Debug, Clone, Copy)]
pub struct CpuSpmmOptions {
    /// Data-path selection.
    pub strategy: Strategy,
    /// C rows processed per parallel task. Zero is treated as 1 (see
    /// [`CpuSpmmOptions::task_rows`]); [`CpuSpmmOptions::new`] rejects it.
    pub row_block: usize,
    /// k-block depth (dense rows) used by the packing path; rounded up to a
    /// multiple of `M` internally.
    pub ks: usize,
    /// Column-block width used by the packing path; rounded up to a multiple
    /// of `L` internally.
    pub ns: usize,
}

impl Default for CpuSpmmOptions {
    fn default() -> Self {
        Self {
            strategy: Strategy::Auto,
            row_block: 32,
            ks: 128,
            ns: 128,
        }
    }
}

impl CpuSpmmOptions {
    /// Validated constructor: every block size must be at least 1.
    pub fn new(strategy: Strategy, row_block: usize, ks: usize, ns: usize) -> Result<Self> {
        if row_block == 0 || ks == 0 || ns == 0 {
            return Err(NmError::InvalidConfig {
                reason: format!(
                    "CPU SpMM block sizes must be positive \
                     (got row_block={row_block}, ks={ks}, ns={ns})"
                ),
            });
        }
        Ok(Self {
            strategy,
            row_block,
            ks,
            ns,
        })
    }

    /// Effective rows per parallel task: `row_block`, clamped to at least 1.
    ///
    /// This is the single place a zero `row_block` (possible only through a
    /// struct literal, since [`CpuSpmmOptions::new`] rejects it) is given a
    /// meaning.
    #[inline]
    pub fn task_rows(&self) -> usize {
        self.row_block.max(1)
    }
}

/// Blocked, multi-threaded N:M SpMM: `C[m][n] = A[m][k] ⊛ (B′, D)`.
///
/// # Panics
/// Panics when `a.cols() != sb.k()`.
pub fn spmm_parallel(a: &MatrixF32, sb: &NmSparseMatrix, opts: &CpuSpmmOptions) -> MatrixF32 {
    let use_packing = match opts.strategy {
        Strategy::Packing => true,
        Strategy::NonPacking => false,
        Strategy::Auto => sb.cfg().class() == SparsityClass::High,
    };
    if use_packing {
        let cfg = sb.cfg();
        let ks = round_up(opts.ks.max(cfg.m), cfg.m).min(round_up(sb.k().max(1), cfg.m));
        let ns = round_up(opts.ns.max(cfg.l), cfg.l).min(round_up(sb.cols().max(1), cfg.l));
        let layout = preprocess(sb, ks, ns).expect("blocking validated by construction");
        spmm_parallel_prepacked(a, sb, &layout, opts)
    } else {
        spmm_nonpacking(a, sb, opts)
    }
}

/// Packing-path SpMM reusing an offline [`PackedLayout`] (amortizes the
/// pre-processing across calls, as inference serving would).
pub fn spmm_parallel_prepacked(
    a: &MatrixF32,
    sb: &NmSparseMatrix,
    layout: &PackedLayout,
    opts: &CpuSpmmOptions,
) -> MatrixF32 {
    let (m, k) = a.shape();
    assert_eq!(k, sb.k(), "inner dimension mismatch");
    let cfg = sb.cfg();
    let n = sb.cols();
    let (w, q) = (sb.w(), sb.q());
    let ci = &layout.col_info;
    let mc = opts.task_rows();

    let mut c = MatrixF32::zeros(m, n);
    let values = sb.values();

    c.as_mut_slice()
        .par_chunks_mut(mc * n)
        .enumerate()
        .for_each(|(chunk_idx, c_chunk)| {
            let i0 = chunk_idx * mc;
            let rows = c_chunk.len() / n;
            // Scratch tile: packed A columns for the current k-block,
            // row-major rows × packed_len.
            let mut packed = vec![0f32; rows * ci.ks];
            for bk in 0..ci.kblocks {
                let u_lo = bk * ci.ws;
                let u_hi = ((bk + 1) * ci.ws).min(w);
                let kbase = bk * ci.ks;
                for bj in 0..ci.cblocks {
                    let j_lo = bj * ci.qs;
                    let j_hi = ((bj + 1) * ci.qs).min(q);
                    let cols = ci.block(bk, bj);
                    let len = cols.len();
                    // Pack: gather only the live columns of A.
                    for r in 0..rows {
                        let a_row = a.row(i0 + r);
                        let dst = &mut packed[r * ci.ks..r * ci.ks + len];
                        for (d, &col) in dst.iter_mut().zip(cols) {
                            let src = kbase + col as usize;
                            *d = if src < k { a_row[src] } else { 0.0 };
                        }
                    }
                    // Compute on the packed tile.
                    for u in u_lo..u_hi {
                        let b_row = values.row(u);
                        for j in j_lo..j_hi {
                            let pos = layout.packed_index(u, j) as usize;
                            let lo = j * cfg.l;
                            let hi = ((j + 1) * cfg.l).min(n);
                            for r in 0..rows {
                                let av = packed[r * ci.ks + pos];
                                if av == 0.0 {
                                    continue;
                                }
                                let c_row = &mut c_chunk[r * n..(r + 1) * n];
                                axpy(&mut c_row[lo..hi], av, &b_row[lo..hi]);
                            }
                        }
                    }
                }
            }
        });
    c
}

fn spmm_nonpacking(a: &MatrixF32, sb: &NmSparseMatrix, opts: &CpuSpmmOptions) -> MatrixF32 {
    let (m, k) = a.shape();
    assert_eq!(k, sb.k(), "inner dimension mismatch");
    let cfg = sb.cfg();
    let n = sb.cols();
    let (w, q) = (sb.w(), sb.q());
    let d = sb.indices();
    let values = sb.values();
    let mc = opts.task_rows();

    // The gather pattern is identical for every row of A: resolve the dense
    // source column of each (u, j) pair once.
    let mut src_col = vec![0u32; w * q];
    for u in 0..w {
        let base = u / cfg.n * cfg.m;
        for j in 0..q {
            src_col[u * q + j] = (base + d.get(u, j) as usize) as u32;
        }
    }

    let mut c = MatrixF32::zeros(m, n);
    c.as_mut_slice()
        .par_chunks_mut(mc * n)
        .enumerate()
        .for_each(|(chunk_idx, c_chunk)| {
            let i0 = chunk_idx * mc;
            let rows = c_chunk.len() / n;
            for u in 0..w {
                let b_row = values.row(u);
                let idx = &src_col[u * q..(u + 1) * q];
                for (j, &src) in idx.iter().enumerate() {
                    let src = src as usize;
                    let lo = j * cfg.l;
                    let hi = ((j + 1) * cfg.l).min(n);
                    for r in 0..rows {
                        let av = if src < k { a.row(i0 + r)[src] } else { 0.0 };
                        if av == 0.0 {
                            continue;
                        }
                        let c_row = &mut c_chunk[r * n..(r + 1) * n];
                        axpy(&mut c_row[lo..hi], av, &b_row[lo..hi]);
                    }
                }
            }
        });
    c
}

/// Blocked, multi-threaded dense GEMM (the wall-clock cuBLAS stand-in).
pub fn gemm_parallel(a: &MatrixF32, b: &MatrixF32) -> MatrixF32 {
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(k, kb, "inner dimension mismatch");
    const KC: usize = 256;
    const MC: usize = 32;

    let mut c = MatrixF32::zeros(m, n);
    c.as_mut_slice()
        .par_chunks_mut(MC * n)
        .enumerate()
        .for_each(|(chunk_idx, c_chunk)| {
            let i0 = chunk_idx * MC;
            let rows = c_chunk.len() / n;
            for p0 in (0..k).step_by(KC) {
                let p1 = (p0 + KC).min(k);
                for r in 0..rows {
                    let a_row = &a.row(i0 + r)[p0..p1];
                    let c_row = &mut c_chunk[r * n..(r + 1) * n];
                    for (p, &av) in a_row.iter().enumerate() {
                        if av == 0.0 {
                            continue;
                        }
                        axpy(c_row, av, b.row(p0 + p));
                    }
                }
            }
        });
    c
}

#[inline]
fn axpy(dst: &mut [f32], alpha: f32, src: &[f32]) {
    debug_assert_eq!(dst.len(), src.len());
    for (d, s) in dst.iter_mut().zip(src) {
        *d += alpha * s;
    }
}

#[inline]
fn round_up(v: usize, to: usize) -> usize {
    v.div_ceil(to) * to
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::NmConfig;
    use crate::prune::PrunePolicy;
    use crate::spmm::{gemm_reference, spmm_reference};

    fn check_against_reference(m: usize, k: usize, n: usize, cfg: NmConfig, strategy: Strategy) {
        let a = MatrixF32::random(m, k, 1);
        let b = MatrixF32::random(k, n, 2);
        let sb = NmSparseMatrix::prune(&b, cfg, PrunePolicy::Random { seed: 3 }).unwrap();
        let expect = spmm_reference(&a, &sb);
        let opts = CpuSpmmOptions {
            strategy,
            ..Default::default()
        };
        let got = spmm_parallel(&a, &sb, &opts);
        assert!(
            got.allclose(&expect, 1e-3, 1e-4),
            "{cfg} / {strategy:?}: max diff {}",
            got.max_abs_diff(&expect)
        );
    }

    #[test]
    fn nonpacking_matches_reference() {
        check_against_reference(
            64,
            128,
            96,
            NmConfig::new(2, 4, 4).unwrap(),
            Strategy::NonPacking,
        );
        check_against_reference(
            33,
            64,
            40,
            NmConfig::new(6, 16, 8).unwrap(),
            Strategy::NonPacking,
        );
    }

    #[test]
    fn packing_matches_reference() {
        check_against_reference(
            64,
            128,
            96,
            NmConfig::new(2, 16, 4).unwrap(),
            Strategy::Packing,
        );
        check_against_reference(
            48,
            256,
            64,
            NmConfig::new(4, 16, 8).unwrap(),
            Strategy::Packing,
        );
        // Packing must also be correct at moderate sparsity.
        check_against_reference(
            32,
            64,
            64,
            NmConfig::new(2, 4, 4).unwrap(),
            Strategy::Packing,
        );
    }

    #[test]
    fn auto_strategy_dispatches_and_matches() {
        check_against_reference(40, 96, 56, NmConfig::new(8, 16, 4).unwrap(), Strategy::Auto);
        check_against_reference(40, 96, 56, NmConfig::new(2, 16, 4).unwrap(), Strategy::Auto);
    }

    #[test]
    fn ragged_shapes_are_handled() {
        // m not divisible by row_block, k and n needing padding.
        check_against_reference(
            37,
            67,
            45,
            NmConfig::new(2, 4, 4).unwrap(),
            Strategy::NonPacking,
        );
        check_against_reference(
            37,
            67,
            45,
            NmConfig::new(2, 16, 4).unwrap(),
            Strategy::Packing,
        );
    }

    #[test]
    fn gemm_parallel_matches_reference() {
        let a = MatrixF32::random(70, 130, 4);
        let b = MatrixF32::random(130, 50, 5);
        let got = gemm_parallel(&a, &b);
        let expect = gemm_reference(&a, &b);
        assert!(
            got.allclose(&expect, 1e-3, 1e-4),
            "max diff {}",
            got.max_abs_diff(&expect)
        );
    }

    #[test]
    fn prepacked_layout_is_reusable() {
        let cfg = NmConfig::new(2, 16, 4).unwrap();
        let b = MatrixF32::random(128, 64, 6);
        let sb = NmSparseMatrix::prune_magnitude(&b, cfg).unwrap();
        let layout = preprocess(&sb, 64, 64).unwrap();
        let opts = CpuSpmmOptions::default();
        for seed in 0..3u64 {
            let a = MatrixF32::random(16, 128, 100 + seed);
            let got = spmm_parallel_prepacked(&a, &sb, &layout, &opts);
            let expect = spmm_reference(&a, &sb);
            assert!(got.allclose(&expect, 1e-3, 1e-4));
        }
    }

    #[test]
    fn dense_config_equals_dense_gemm() {
        let cfg = NmConfig::new(4, 4, 4).unwrap();
        let a = MatrixF32::random(32, 64, 7);
        let b = MatrixF32::random(64, 32, 8);
        let sb = NmSparseMatrix::prune_magnitude(&b, cfg).unwrap();
        let got = spmm_parallel(&a, &sb, &CpuSpmmOptions::default());
        let expect = gemm_reference(&a, &b);
        assert!(got.allclose(&expect, 1e-3, 1e-4));
    }

    #[test]
    fn constructor_rejects_zero_blocks() {
        assert!(CpuSpmmOptions::new(Strategy::Auto, 0, 128, 128).is_err());
        assert!(CpuSpmmOptions::new(Strategy::Auto, 32, 0, 128).is_err());
        assert!(CpuSpmmOptions::new(Strategy::Auto, 32, 128, 0).is_err());
        let ok = CpuSpmmOptions::new(Strategy::Packing, 16, 64, 32).unwrap();
        assert_eq!(ok.task_rows(), 16);
    }

    #[test]
    fn zero_row_block_via_literal_is_clamped_once() {
        // The documented escape hatch: a struct literal can still carry 0,
        // and `task_rows` is the single clamp point both data paths use.
        let opts = CpuSpmmOptions {
            row_block: 0,
            ..Default::default()
        };
        assert_eq!(opts.task_rows(), 1);
        let cfg = NmConfig::new(2, 4, 2).unwrap();
        let a = MatrixF32::random(5, 16, 21);
        let b = MatrixF32::random(16, 8, 22);
        let sb = NmSparseMatrix::prune_magnitude(&b, cfg).unwrap();
        for strategy in [Strategy::NonPacking, Strategy::Packing] {
            let got = spmm_parallel(&a, &sb, &CpuSpmmOptions { strategy, ..opts });
            assert!(got.allclose(&spmm_reference(&a, &sb), 1e-3, 1e-4));
        }
    }

    #[test]
    fn tiny_row_block_still_correct() {
        let cfg = NmConfig::new(2, 4, 2).unwrap();
        let a = MatrixF32::random(9, 16, 9);
        let b = MatrixF32::random(16, 10, 10);
        let sb = NmSparseMatrix::prune_magnitude(&b, cfg).unwrap();
        let opts = CpuSpmmOptions {
            row_block: 1,
            ..Default::default()
        };
        let got = spmm_parallel(&a, &sb, &opts);
        assert!(got.allclose(&spmm_reference(&a, &sb), 1e-3, 1e-4));
    }
}
