//! # nm-core — N:M vector-wise sparsity for matrix multiplication
//!
//! Core library of the NM-SpMM reproduction (Ma et al., IPDPS 2025,
//! arXiv:2503.01253). Implements the paper's sparse format and every CPU-side
//! algorithm it depends on:
//!
//! * dense row-major [`MatrixF32`] with seeded generators,
//! * the N:M vector-wise configuration [`NmConfig`] (keep N vectors of
//!   length `L` out of every M along the `k` dimension),
//! * pruning ([`prune`]) by magnitude, random or strided selection,
//! * compression into [`NmSparseMatrix`] — the `B′` values matrix (`w×n`)
//!   plus the index matrix `D` (`w×q`), including bit-packed index layouts,
//! * offline pre-processing for the high-sparsity packing path
//!   ([`colinfo`]): `col_info` extraction, index reordering and layout
//!   transformation (paper Fig. 4, Listing 3),
//! * reference kernels ([`spmm`]) implementing Eq. (1) directly and via
//!   decompress-then-GEMM, plus an `f64` reference for accuracy checks,
//! * a fast multi-threaded blocked CPU implementation ([`parallel`]) with
//!   both the packing and non-packing data paths,
//! * the confusion-matrix approximation metric of Eq. (2) ([`confusion`]).
//!
//! The GPU-side implementation lives in the `nm-kernels` crate on top of the
//! `gpu-sim` substrate; both consume the types defined here.
//!
//! ## Quick start
//!
//! ```
//! use nm_core::prelude::*;
//!
//! // 2:4 sparsity with vector length 4 — 50% of B is pruned away.
//! let cfg = NmConfig::new(2, 4, 4).unwrap();
//! let a = MatrixF32::random(64, 128, 1);
//! let b = MatrixF32::random(128, 96, 2);
//! let sb = NmSparseMatrix::prune_magnitude(&b, cfg).unwrap();
//! let c = nm_core::spmm::spmm_reference(&a, &sb);
//! assert_eq!((c.rows(), c.cols()), (64, 96));
//! ```

#![warn(missing_docs)]

pub mod batched;
pub mod colinfo;
pub mod confusion;
pub mod error;
pub mod index;
pub mod inspect;
pub mod json;
pub mod layerwise;
pub mod matrix;
pub mod parallel;
pub mod pattern;
pub mod permute;
pub mod prune;
pub mod serialize;
pub mod sliced;
pub mod sparse;
pub mod spmm;

pub use batched::spmv;
pub use colinfo::{ColInfo, PackedLayout};
pub use error::NmError;
pub use index::{IndexLayout, IndexMatrix};
pub use json::JsonValue;
pub use matrix::MatrixF32;
pub use pattern::NmConfig;
pub use sliced::{SlicedLayout, SlicedMatrix, StorageFormat};
pub use sparse::NmSparseMatrix;

/// Convenient glob-import of the most used types.
pub mod prelude {
    pub use crate::colinfo::{ColInfo, PackedLayout};
    pub use crate::error::NmError;
    pub use crate::index::{IndexLayout, IndexMatrix};
    pub use crate::matrix::MatrixF32;
    pub use crate::pattern::NmConfig;
    pub use crate::sliced::{SlicedLayout, SlicedMatrix, StorageFormat};
    pub use crate::sparse::NmSparseMatrix;
}
