//! The compressed N:M vector-wise sparse matrix (`B′` + `D`).
//!
//! Compression follows paper Fig. 1: for every pruning window of `M` rows ×
//! `L` columns of `B[k][n]`, the `N` selected row-vectors are stacked into
//! the values matrix `B′[w][n]` (`w = k·N/M`); the index matrix `D[w][q]`
//! (`q = ⌈n/L⌉`) records each vector's offset within its window.

use crate::error::{NmError, Result};
use crate::index::{IndexLayout, IndexMatrix};
use crate::matrix::MatrixF32;
use crate::pattern::NmConfig;
use crate::prune::{select, PrunePolicy};
use crate::sliced::StorageFormat;
use serde::{Deserialize, Serialize};

/// A dense matrix pruned to N:M vector-wise sparsity and stored compressed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NmSparseMatrix {
    cfg: NmConfig,
    /// Original (unpadded) row count `k`.
    k: usize,
    /// Original (unpadded) column count `n`.
    n_cols: usize,
    /// Compressed values `B′`, shape `w × n`.
    values: MatrixF32,
    /// Index matrix `D`, shape `w × q`.
    indices: IndexMatrix,
}

impl NmSparseMatrix {
    /// Prune `b` with the magnitude policy and compress.
    pub fn prune_magnitude(b: &MatrixF32, cfg: NmConfig) -> Result<Self> {
        Self::prune(b, cfg, PrunePolicy::Magnitude)
    }

    /// Prune `b` with an arbitrary policy and compress.
    pub fn prune(b: &MatrixF32, cfg: NmConfig, policy: PrunePolicy) -> Result<Self> {
        let d = select(b, cfg, policy);
        Self::compress(b, cfg, d)
    }

    /// Compress `b` using a pre-computed canonical selection `d`.
    ///
    /// `d` must have shape `(⌈k/M⌉·N) × ⌈n/L⌉` and pass
    /// [`IndexMatrix::validate`].
    pub fn compress(b: &MatrixF32, cfg: NmConfig, d: IndexMatrix) -> Result<Self> {
        let (k, n) = b.shape();
        let w = cfg.compressed_rows(k);
        let q = cfg.window_cols(n);
        if d.w() != w || d.q() != q {
            return Err(NmError::DimensionMismatch {
                expected: format!("index matrix {w}x{q}"),
                found: format!("{}x{}", d.w(), d.q()),
            });
        }
        d.validate(cfg)?;

        let mut values = MatrixF32::zeros(w, n);
        for u in 0..w {
            let window = u / cfg.n;
            let base = window * cfg.m;
            for j in 0..q {
                let src_row = base + d.get(u, j) as usize;
                if src_row >= k {
                    continue; // padded row — stays zero
                }
                let lo = j * cfg.l;
                let hi = ((j + 1) * cfg.l).min(n);
                let dst = &mut values.row_mut(u)[lo..hi];
                dst.copy_from_slice(&b.row(src_row)[lo..hi]);
            }
        }
        Ok(Self {
            cfg,
            k,
            n_cols: n,
            values,
            indices: d,
        })
    }

    /// Expand back to a dense `k × n` matrix (pruned entries are zero).
    pub fn decompress(&self) -> MatrixF32 {
        let mut out = MatrixF32::zeros(self.k, self.n_cols);
        for u in 0..self.w() {
            let window = u / self.cfg.n;
            let base = window * self.cfg.m;
            for j in 0..self.q() {
                let dst_row = base + self.indices.get(u, j) as usize;
                if dst_row >= self.k {
                    continue;
                }
                let lo = j * self.cfg.l;
                let hi = ((j + 1) * self.cfg.l).min(self.n_cols);
                out.row_mut(dst_row)[lo..hi].copy_from_slice(&self.values.row(u)[lo..hi]);
            }
        }
        out
    }

    /// 0/1 mask of surviving positions, shape `k × n`.
    pub fn dense_mask(&self) -> MatrixF32 {
        let mut out = MatrixF32::zeros(self.k, self.n_cols);
        for u in 0..self.w() {
            let window = u / self.cfg.n;
            let base = window * self.cfg.m;
            for j in 0..self.q() {
                let dst_row = base + self.indices.get(u, j) as usize;
                if dst_row >= self.k {
                    continue;
                }
                let lo = j * self.cfg.l;
                let hi = ((j + 1) * self.cfg.l).min(self.n_cols);
                for v in &mut out.row_mut(dst_row)[lo..hi] {
                    *v = 1.0;
                }
            }
        }
        out
    }

    /// The sparsity configuration.
    #[inline]
    pub fn cfg(&self) -> NmConfig {
        self.cfg
    }

    /// Original row count `k` of the dense matrix.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Column count `n` (shared by dense and compressed forms).
    #[inline]
    pub fn cols(&self) -> usize {
        self.n_cols
    }

    /// Compressed row count `w = ⌈k/M⌉·N`.
    #[inline]
    pub fn w(&self) -> usize {
        self.values.rows()
    }

    /// Window-column count `q = ⌈n/L⌉`.
    #[inline]
    pub fn q(&self) -> usize {
        self.indices.q()
    }

    /// The compressed values matrix `B′` (`w × n`).
    #[inline]
    pub fn values(&self) -> &MatrixF32 {
        &self.values
    }

    /// The index matrix `D` (`w × q`).
    #[inline]
    pub fn indices(&self) -> &IndexMatrix {
        &self.indices
    }

    /// Re-run the structural validation (useful after deserialization).
    pub fn validate(&self) -> Result<()> {
        self.indices.validate(self.cfg)
    }

    /// Compressed footprint in bytes: values + indices under `layout`.
    pub fn storage_bytes(&self, layout: IndexLayout) -> usize {
        std::mem::size_of_val(self.values.as_slice()) + self.indices.storage_bytes(self.cfg, layout)
    }

    /// Dense footprint in bytes of the original matrix.
    pub fn dense_bytes(&self) -> usize {
        self.k * self.n_cols * std::mem::size_of::<f32>()
    }

    /// `dense_bytes / storage_bytes` — how much smaller the compressed form is.
    pub fn compression_ratio(&self, layout: IndexLayout) -> f64 {
        self.dense_bytes() as f64 / self.storage_bytes(layout) as f64
    }

    /// Compressed footprint in bytes under an arbitrary storage format.
    ///
    /// [`StorageFormat::RowMajor`] defers to [`NmSparseMatrix::storage_bytes`]
    /// with `layout`; a sliced format re-lays the same floats out in slice
    /// panels but replaces the `u8`/bit-packed `D` with absolute `u32`
    /// gather indices plus a window permutation table, so `layout` does not
    /// apply to it — the sliced footprint is always the `u32` one.
    pub fn storage_bytes_as(&self, format: StorageFormat, layout: IndexLayout) -> usize {
        match format {
            StorageFormat::RowMajor => self.storage_bytes(layout),
            StorageFormat::Sliced(s) => s.storage_bytes_for(self.w(), self.cols(), self.q()),
        }
    }

    /// `dense_bytes / storage_bytes_as` under an arbitrary storage format.
    pub fn compression_ratio_as(&self, format: StorageFormat, layout: IndexLayout) -> f64 {
        self.dense_bytes() as f64 / self.storage_bytes_as(format, layout) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n: usize, m: usize, l: usize) -> NmConfig {
        NmConfig::new(n, m, l).unwrap()
    }

    #[test]
    fn compress_decompress_preserves_kept_values() {
        let b = MatrixF32::random(32, 24, 1);
        let sb = NmSparseMatrix::prune_magnitude(&b, cfg(2, 4, 4)).unwrap();
        let dense = sb.decompress();
        // Every nonzero of the decompressed matrix matches B exactly.
        for i in 0..32 {
            for j in 0..24 {
                let v = dense.get(i, j);
                if v != 0.0 {
                    assert_eq!(v, b.get(i, j));
                }
            }
        }
        // Exactly N/M of the entries survive.
        assert_eq!(dense.count_zeros(), 32 * 24 / 2);
    }

    #[test]
    fn mask_matches_decompressed_support() {
        let b = MatrixF32::random(16, 16, 2);
        let sb = NmSparseMatrix::prune(&b, cfg(4, 16, 8), PrunePolicy::Random { seed: 3 }).unwrap();
        let mask = sb.dense_mask();
        let dense = sb.decompress();
        for i in 0..16 {
            for j in 0..16 {
                if mask.get(i, j) == 1.0 {
                    assert_eq!(dense.get(i, j), b.get(i, j));
                } else {
                    assert_eq!(dense.get(i, j), 0.0);
                }
            }
        }
        let kept: usize = mask.as_slice().iter().map(|v| *v as usize).sum();
        assert_eq!(kept, 16 * 16 / 4);
    }

    #[test]
    fn dense_n_equals_m_round_trips_exactly() {
        let b = MatrixF32::random(8, 8, 3);
        let sb = NmSparseMatrix::prune_magnitude(&b, cfg(4, 4, 4)).unwrap();
        assert_eq!(sb.decompress(), b);
        assert_eq!(sb.w(), 8);
    }

    #[test]
    fn shapes_follow_paper_formulas() {
        let b = MatrixF32::random(64, 40, 4);
        let c = cfg(2, 16, 8);
        let sb = NmSparseMatrix::prune_magnitude(&b, c).unwrap();
        assert_eq!(sb.w(), 64 * 2 / 16);
        assert_eq!(sb.q(), 40 / 8);
        assert_eq!(sb.values().shape(), (8, 40));
    }

    #[test]
    fn padding_on_both_axes() {
        // k=10 (pads to 12 with M=4), n=7 (pads to 8 with L=4 -> q=2).
        let b = MatrixF32::random(10, 7, 5);
        let c = cfg(2, 4, 4);
        let sb = NmSparseMatrix::prune_magnitude(&b, c).unwrap();
        assert_eq!(sb.w(), 6);
        assert_eq!(sb.q(), 2);
        let dense = sb.decompress();
        assert_eq!(dense.shape(), (10, 7));
        // Kept values still match the original.
        for i in 0..10 {
            for j in 0..7 {
                let v = dense.get(i, j);
                if v != 0.0 {
                    assert_eq!(v, b.get(i, j));
                }
            }
        }
    }

    #[test]
    fn compress_rejects_wrong_index_shape() {
        let b = MatrixF32::random(16, 16, 1);
        let c = cfg(2, 4, 4);
        let d = IndexMatrix::zeros(4, 4); // wrong: w should be 8
        assert!(matches!(
            NmSparseMatrix::compress(&b, c, d),
            Err(NmError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn compress_rejects_corrupt_indices() {
        let b = MatrixF32::random(4, 4, 1);
        let c = cfg(2, 4, 4);
        let d = IndexMatrix::from_vec(2, 1, vec![3, 1]); // not increasing
        assert!(matches!(
            NmSparseMatrix::compress(&b, c, d),
            Err(NmError::CorruptIndex { .. })
        ));
    }

    #[test]
    fn storage_accounting() {
        let b = MatrixF32::random(64, 64, 6);
        let c = cfg(2, 16, 4); // 87.5% sparsity, 4-bit indices
        let sb = NmSparseMatrix::prune_magnitude(&b, c).unwrap();
        let dense = sb.dense_bytes();
        assert_eq!(dense, 64 * 64 * 4);
        let packed = sb.storage_bytes(IndexLayout::BitPacked);
        // values: 8x64 floats = 2048B; indices: 8x16 entries * 4 bits = 64B.
        assert_eq!(packed, 2048 + 64);
        assert!(sb.compression_ratio(IndexLayout::BitPacked) > 7.0);
        assert!(
            sb.storage_bytes(IndexLayout::RowMajorU8) > packed,
            "u8 layout must cost more than bit-packed"
        );
    }

    #[test]
    fn per_format_storage_accounting() {
        use crate::sliced::{SlicedLayout, StorageFormat};
        let b = MatrixF32::random(64, 64, 6);
        let c = cfg(2, 16, 4); // w=8, q=16
        let sb = NmSparseMatrix::prune_magnitude(&b, c).unwrap();
        // Row-major defers to the layout-specific accounting.
        for layout in [IndexLayout::RowMajorU8, IndexLayout::BitPacked] {
            assert_eq!(
                sb.storage_bytes_as(StorageFormat::RowMajor, layout),
                sb.storage_bytes(layout)
            );
        }
        // Sliced: same floats, u32 gather indices + u32 permutation table,
        // independent of the index layout argument.
        let sliced = StorageFormat::Sliced(SlicedLayout::DEFAULT);
        let bytes = sb.storage_bytes_as(sliced, IndexLayout::BitPacked);
        assert_eq!(bytes, 8 * 64 * 4 + 8 * 16 * 4 + 16 * 4);
        assert_eq!(bytes, sb.storage_bytes_as(sliced, IndexLayout::RowMajorU8));
        // The u32 indices cost more than the u8 D — honest accounting.
        assert!(bytes > sb.storage_bytes(IndexLayout::RowMajorU8));
        assert!(sb.compression_ratio_as(sliced, IndexLayout::BitPacked) > 1.0);
        assert!(
            sb.compression_ratio_as(sliced, IndexLayout::BitPacked)
                < sb.compression_ratio(IndexLayout::BitPacked)
        );
    }

    #[test]
    fn values_columns_beyond_last_window_are_zero_padded_window() {
        // n=6, L=4 -> q=2; second window covers cols 4..6 only.
        let b = MatrixF32::random(8, 6, 7);
        let sb = NmSparseMatrix::prune_magnitude(&b, cfg(2, 4, 4)).unwrap();
        assert_eq!(sb.q(), 2);
        let dense = sb.decompress();
        assert_eq!(dense.shape(), (8, 6));
    }
}
