//! SELL-C-σ-style sliced storage for the compressed operand (`B′`, `D`).
//!
//! Kreutzer et al.'s SELL-C-σ stores a sparse matrix as *slices* of `C`
//! consecutive rows, sorted by row population inside windows of `σ` rows,
//! so that SIMD lanes of a slice stream comparable work. NM-SpMM's operand
//! is structured rather than unstructured, so the translation is made
//! along the dimension that is actually independent in the SpMV view
//! `y = x ⊛ (B′, D)`: the **output columns**, grouped in pruning windows
//! of `L` columns. Each window has one index column of `D` (every output
//! column inside it gathers through the same per-row offset), which makes
//! a window the natural SELL "row":
//!
//! * **slice** — `slice_height` (= `C`) consecutive windows after sorting,
//!   stored as one dense `w × width` panel whose columns are contiguous
//!   per compressed row (the slice is what the kernel streams);
//! * **sort window** — windows are reordered inside disjoint groups of
//!   `sort_window` (= `σ`) windows. Classic SELL sorts by row length; an
//!   N:M window always holds exactly `w` entries, so the sort key is the
//!   window's *offset mass* (the sum of its `D` column) — windows whose
//!   kept vectors sit at similar depths inside each pruning window land in
//!   the same slice and gather from correlated positions of `x`;
//! * **permutation** — carried as a [`ChannelPermutation`]
//!   (`perm[new] = old` over window indices, the same convention
//!   `permute.rs` uses for `k`-rows). Because whole windows move, the
//!   inverse permutation on write-back is a contiguous copy per window,
//!   and the summation order over compressed rows is untouched — sliced
//!   results can be *bit-identical* to the row-major path.
//!
//! The built product additionally materializes **absolute** gather indices
//! (`u32`, one per compressed row per window) so the online kernel skips
//! the per-call `base + D[u][j]` reconstruction the row-major staging
//! performs; that is the format's speed, paid for with `4×` the index
//! bytes of the `u8` row-major `D` ([`SlicedMatrix::storage_bytes`]
//! reports the honest total).

use crate::error::{NmError, Result};
use crate::permute::ChannelPermutation;
use crate::sparse::NmSparseMatrix;
use serde::{Deserialize, Serialize};

/// Environment variable that pins the storage format for session loads
/// (`rowmajor`, `sliced`, or `sliced:<C>:<σ>`). Validated strictly, like
/// `NM_SPMM_ISA`: an unrecognized value is a structured error, never a
/// silent fallback.
pub const STORAGE_ENV: &str = "NM_SPMM_STORAGE";

/// The SELL-C-σ parameters: slice height `C` and sort-window `σ`, both in
/// pruning-window units along the output dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SlicedLayout {
    /// Windows per slice (`C ≥ 1`).
    pub slice_height: usize,
    /// Windows per sort group (`σ ≥ 1`; `σ = 1` disables sorting).
    pub sort_window: usize,
}

impl SlicedLayout {
    /// The default decode-band layout (`C = 8`, `σ = 32`): slices wide
    /// enough to amortize the panel switch, sorting across four slices.
    pub const DEFAULT: SlicedLayout = SlicedLayout {
        slice_height: 8,
        sort_window: 32,
    };

    /// Validated constructor: both parameters must be positive.
    pub fn new(slice_height: usize, sort_window: usize) -> Result<Self> {
        if slice_height == 0 || sort_window == 0 {
            return Err(NmError::InvalidConfig {
                reason: format!(
                    "sliced layout needs positive slice height and sort window \
                     (got C={slice_height}, sigma={sort_window})"
                ),
            });
        }
        Ok(Self {
            slice_height,
            sort_window,
        })
    }

    /// Build the sliced form of `sb` under these parameters.
    pub fn build(&self, sb: &NmSparseMatrix) -> Result<SlicedMatrix> {
        SlicedMatrix::build(sb, *self)
    }

    /// Bytes the sliced form of a `w × n` operand with `q` windows takes:
    /// the values panels (same float count as row-major, re-laid out), the
    /// absolute `u32` gather indices, and the `u32` window permutation.
    pub fn storage_bytes_for(&self, w: usize, n: usize, q: usize) -> usize {
        w * n * std::mem::size_of::<f32>()
            + w * q * std::mem::size_of::<u32>()
            + q * std::mem::size_of::<u32>()
    }
}

impl Default for SlicedLayout {
    fn default() -> Self {
        Self::DEFAULT
    }
}

impl std::fmt::Display for SlicedLayout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "C={} sigma={}", self.slice_height, self.sort_window)
    }
}

/// Which storage layout a preparation stages the compressed operand in —
/// a first-class, planned dimension: the cache keys plans per format and
/// the measured autotuner picks the winner per host and shape.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StorageFormat {
    /// The paper's layout: `B′` row-major, `D` as `u8` window offsets.
    #[default]
    RowMajor,
    /// SELL-C-σ sliced panels with absolute gather indices.
    Sliced(SlicedLayout),
}

impl StorageFormat {
    /// Stable identifier: `rowmajor` or `sliced:<C>:<σ>` — what plan-cache
    /// documents and BENCH artifacts record.
    pub fn tag(&self) -> String {
        match self {
            StorageFormat::RowMajor => "rowmajor".to_string(),
            StorageFormat::Sliced(s) => format!("sliced:{}:{}", s.slice_height, s.sort_window),
        }
    }

    /// Inverse of [`StorageFormat::tag`], also accepting the spellings an
    /// operator would type into [`STORAGE_ENV`]: `rowmajor` / `row-major`
    /// / `row_major`, bare `sliced` (the default `C`/`σ`), or
    /// `sliced:<C>:<σ>`.
    ///
    /// # Errors
    /// [`NmError::Unsupported`] for anything unrecognized — a typo'd
    /// override must fail loudly, never silently fall back.
    pub fn from_name(name: &str) -> Result<Self> {
        let lower = name.to_ascii_lowercase();
        match lower.as_str() {
            "rowmajor" | "row-major" | "row_major" => return Ok(StorageFormat::RowMajor),
            "sliced" => return Ok(StorageFormat::Sliced(SlicedLayout::DEFAULT)),
            _ => {}
        }
        if let Some(rest) = lower.strip_prefix("sliced:") {
            let mut parts = rest.split(':');
            let c = parts.next().and_then(|v| v.parse::<usize>().ok());
            let sigma = parts.next().and_then(|v| v.parse::<usize>().ok());
            if let (Some(c), Some(sigma), None) = (c, sigma, parts.next()) {
                return Ok(StorageFormat::Sliced(SlicedLayout::new(c, sigma)?));
            }
        }
        Err(NmError::Unsupported {
            reason: format!(
                "unknown storage format `{name}` \
                 (expected rowmajor, sliced, or sliced:<C>:<sigma>)"
            ),
        })
    }

    /// The format requested through the [`STORAGE_ENV`] environment
    /// variable: `None` when unset or empty, the parsed format otherwise.
    ///
    /// # Errors
    /// [`NmError::Unsupported`] when the variable holds an unrecognized
    /// value — validated up front, exactly like `NM_SPMM_ISA`, so a typo
    /// can never silently run the wrong layout.
    pub fn from_env() -> Result<Option<Self>> {
        match std::env::var(STORAGE_ENV) {
            Ok(v) if v.is_empty() => Ok(None),
            Ok(v) => Self::from_name(&v).map(Some),
            Err(_) => Ok(None),
        }
    }

    /// Whether this is a sliced layout.
    pub fn is_sliced(&self) -> bool {
        matches!(self, StorageFormat::Sliced(_))
    }
}

impl std::fmt::Display for StorageFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.tag())
    }
}

/// The built sliced form: per-slice contiguous value panels, absolute
/// gather indices, and the window permutation that produced them.
///
/// Everything here depends only on the weights, never on activations — it
/// is offline work in the paper's accounting, built once per preparation.
#[derive(Debug, Clone, PartialEq)]
pub struct SlicedMatrix {
    layout: SlicedLayout,
    /// Compressed row count of the source operand.
    w: usize,
    /// Dense column count of the source operand.
    n: usize,
    /// Window count along the output dimension.
    q: usize,
    /// Vector length `L`.
    l: usize,
    /// Window permutation, `perm[new] = old` — reused from `permute.rs`.
    perm: ChannelPermutation,
    /// Per permuted window: first dense output column and width (the
    /// write-back map; the final window of a ragged `n` is narrower).
    spans: Vec<(u32, u32)>,
    /// Per-slice value panels, concatenated. Slice `s` holds `w` rows of
    /// `width(s)` floats; a slice's columns are contiguous per row.
    values: Vec<f32>,
    /// Per-slice absolute gather indices, concatenated. Slice `s` holds
    /// one `w`-long `u32` column per window, window-major — the index
    /// stream the kernel reads instead of recomputing `base + D[u][j]`.
    gather: Vec<u32>,
    /// Value-panel offset of each slice (`slices + 1` entries).
    offs_v: Vec<usize>,
    /// Gather-panel offset of each slice (`slices + 1` entries).
    offs_i: Vec<usize>,
}

impl SlicedMatrix {
    /// Build the sliced form of `sb`: sort windows by offset mass inside
    /// each `σ` group (stable, so `σ = 1` and uniform patterns keep the
    /// identity), then materialize per-slice panels and absolute indices.
    pub fn build(sb: &NmSparseMatrix, layout: SlicedLayout) -> Result<Self> {
        // Constructed through the validated path even when callers built
        // the struct literally.
        let layout = SlicedLayout::new(layout.slice_height, layout.sort_window)?;
        let cfg = sb.cfg();
        let (w, n, q, l) = (sb.w(), sb.cols(), sb.q(), cfg.l);
        let d = sb.indices();

        // Sort key per window: offset mass of its index column.
        let mass: Vec<u64> = (0..q)
            .map(|j| (0..w).map(|u| d.get(u, j) as u64).sum())
            .collect();
        let mut perm: Vec<usize> = (0..q).collect();
        for group in perm.chunks_mut(layout.sort_window) {
            group.sort_by_key(|&j| mass[j]); // stable: ties keep input order
        }
        let swaps = perm.iter().enumerate().filter(|(i, &j)| *i != j).count();
        let total_mass = mass.iter().sum::<u64>() as f64;
        let perm = ChannelPermutation {
            perm,
            retained_before: total_mass,
            retained_after: total_mass, // a reorder never changes the mass
            swaps,
        };

        let spans: Vec<(u32, u32)> = perm
            .perm
            .iter()
            .map(|&jw| {
                let lo = jw * l;
                let hi = ((jw + 1) * l).min(n);
                (lo as u32, (hi - lo) as u32)
            })
            .collect();

        let slices = q.div_ceil(layout.slice_height);
        let values_src = sb.values();
        let mut values = Vec::with_capacity(w * n);
        let mut gather = Vec::with_capacity(w * q);
        let mut offs_v = Vec::with_capacity(slices + 1);
        let mut offs_i = Vec::with_capacity(slices + 1);
        for s in 0..slices {
            offs_v.push(values.len());
            offs_i.push(gather.len());
            let lo = s * layout.slice_height;
            let hi = (lo + layout.slice_height).min(q);
            // Values: slice columns contiguous per compressed row.
            for u in 0..w {
                let row = values_src.row(u);
                for &(col, width) in &spans[lo..hi] {
                    values.extend_from_slice(&row[col as usize..(col + width) as usize]);
                }
            }
            // Indices: absolute positions, one w-long column per window.
            for pos in lo..hi {
                let jw = perm.perm[pos];
                for u in 0..w {
                    let base = u / cfg.n * cfg.m;
                    gather.push((base + d.get(u, jw) as usize) as u32);
                }
            }
        }
        offs_v.push(values.len());
        offs_i.push(gather.len());

        Ok(Self {
            layout,
            w,
            n,
            q,
            l,
            perm,
            spans,
            values,
            gather,
            offs_v,
            offs_i,
        })
    }

    /// The parameters this matrix was built with.
    #[inline]
    pub fn layout(&self) -> SlicedLayout {
        self.layout
    }

    /// Compressed row count of the source operand.
    #[inline]
    pub fn w(&self) -> usize {
        self.w
    }

    /// Dense column count of the source operand.
    #[inline]
    pub fn cols(&self) -> usize {
        self.n
    }

    /// Window count along the output dimension.
    #[inline]
    pub fn windows(&self) -> usize {
        self.q
    }

    /// Number of slices (`⌈q / C⌉`).
    #[inline]
    pub fn slices(&self) -> usize {
        self.offs_v.len() - 1
    }

    /// The window permutation (`perm[new] = old`, over window indices).
    #[inline]
    pub fn perm(&self) -> &ChannelPermutation {
        &self.perm
    }

    /// Inverse permutation: `inv[old_window] = new_position`.
    pub fn inverse(&self) -> Vec<usize> {
        let mut inv = vec![0usize; self.q];
        for (new, &old) in self.perm.perm.iter().enumerate() {
            inv[old] = new;
        }
        inv
    }

    /// Permuted window positions covered by slice `s`.
    #[inline]
    pub fn slice_windows(&self, s: usize) -> std::ops::Range<usize> {
        let lo = s * self.layout.slice_height;
        lo..(lo + self.layout.slice_height).min(self.q)
    }

    /// Total column width of slice `s`.
    #[inline]
    pub fn width(&self, s: usize) -> usize {
        let rows = self.w.max(1);
        (self.offs_v[s + 1] - self.offs_v[s]) / rows
    }

    /// First dense output column and width of the window at permuted
    /// position `pos` — the contiguous write-back target.
    #[inline]
    pub fn span(&self, pos: usize) -> (usize, usize) {
        let (col, width) = self.spans[pos];
        (col as usize, width as usize)
    }

    /// The value panel of slice `s`: `w` rows of [`SlicedMatrix::width`]
    /// floats, row-major, slice columns contiguous per row.
    #[inline]
    pub fn value_panel(&self, s: usize) -> &[f32] {
        &self.values[self.offs_v[s]..self.offs_v[s + 1]]
    }

    /// Absolute gather indices of the `wi`-th window of slice `s`,
    /// restricted to compressed rows `u_lo..u_hi`.
    #[inline]
    pub fn gather_span(&self, s: usize, wi: usize, u_lo: usize, u_hi: usize) -> &[u32] {
        let at = self.offs_i[s] + wi * self.w;
        &self.gather[at + u_lo..at + u_hi]
    }

    /// Bytes this built form occupies: value panels, absolute `u32`
    /// indices, and the `u32`-sized permutation table. `4×` the index
    /// bytes of the row-major `u8` layout — the price of skipping the
    /// per-call index reconstruction.
    pub fn storage_bytes(&self) -> usize {
        self.layout.storage_bytes_for(self.w, self.n, self.q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::MatrixF32;
    use crate::pattern::NmConfig;
    use crate::prune::PrunePolicy;

    fn sparse(k: usize, n: usize, cfg: NmConfig, seed: u64) -> NmSparseMatrix {
        let b = MatrixF32::random(k, n, seed);
        NmSparseMatrix::prune(&b, cfg, PrunePolicy::Random { seed }).unwrap()
    }

    #[test]
    fn layout_rejects_zero_parameters() {
        assert!(SlicedLayout::new(0, 4).is_err());
        assert!(SlicedLayout::new(4, 0).is_err());
        assert!(SlicedLayout::new(1, 1).is_ok());
        let err = SlicedMatrix::build(
            &sparse(16, 16, NmConfig::new(2, 4, 4).unwrap(), 1),
            SlicedLayout {
                slice_height: 0,
                sort_window: 1,
            },
        )
        .unwrap_err();
        assert!(matches!(err, NmError::InvalidConfig { .. }), "{err}");
    }

    #[test]
    fn format_tags_round_trip_and_reject_junk() {
        for f in [
            StorageFormat::RowMajor,
            StorageFormat::Sliced(SlicedLayout::DEFAULT),
            StorageFormat::Sliced(SlicedLayout::new(4, 16).unwrap()),
        ] {
            assert_eq!(StorageFormat::from_name(&f.tag()).unwrap(), f);
            assert_eq!(f.to_string(), f.tag());
        }
        assert_eq!(
            StorageFormat::from_name("row-major").unwrap(),
            StorageFormat::RowMajor
        );
        assert_eq!(
            StorageFormat::from_name("SLICED").unwrap(),
            StorageFormat::Sliced(SlicedLayout::DEFAULT)
        );
        for bad in ["csr", "sliced:", "sliced:0:4", "sliced:4", "sliced:4:2:1"] {
            assert!(
                matches!(
                    StorageFormat::from_name(bad),
                    Err(NmError::Unsupported { .. }) | Err(NmError::InvalidConfig { .. })
                ),
                "`{bad}` must be rejected"
            );
        }
        assert!(!StorageFormat::RowMajor.is_sliced());
        assert!(StorageFormat::default() == StorageFormat::RowMajor);
        assert!(StorageFormat::Sliced(SlicedLayout::default()).is_sliced());
    }

    #[test]
    fn permutation_is_valid_and_stable_within_sort_groups() {
        let cfg = NmConfig::new(2, 8, 4).unwrap();
        let sb = sparse(32, 64, cfg, 7); // q = 16 windows
        let sm = SlicedMatrix::build(&sb, SlicedLayout::new(4, 8).unwrap()).unwrap();
        let mut sorted = sm.perm().perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>());
        // Windows never cross their sigma group.
        for (new, &old) in sm.perm().perm.iter().enumerate() {
            assert_eq!(new / 8, old / 8, "window {old} escaped its sort group");
        }
        // sigma = 1 is the identity.
        let id = SlicedMatrix::build(&sb, SlicedLayout::new(4, 1).unwrap()).unwrap();
        assert_eq!(id.perm().perm, (0..16).collect::<Vec<_>>());
        assert_eq!(id.perm().swaps, 0);
    }

    #[test]
    fn inverse_round_trips_bit_for_bit() {
        let cfg = NmConfig::new(2, 8, 4).unwrap();
        let sb = sparse(32, 60, cfg, 9); // ragged n: final window is narrower
        let sm = SlicedMatrix::build(&sb, SlicedLayout::new(3, 15).unwrap()).unwrap();
        let inv = sm.inverse();
        for (old, &new) in inv.iter().enumerate() {
            assert_eq!(sm.perm().perm[new], old);
        }
        // Reassembling rows from the slice panels through the spans
        // restores the original values exactly.
        let values = sb.values();
        for u in 0..sm.w() {
            let mut restored = vec![0f32; sm.cols()];
            for s in 0..sm.slices() {
                let width = sm.width(s);
                let panel = sm.value_panel(s);
                let mut off = 0usize;
                for pos in sm.slice_windows(s) {
                    let (col, lw) = sm.span(pos);
                    restored[col..col + lw]
                        .copy_from_slice(&panel[u * width + off..u * width + off + lw]);
                    off += lw;
                }
            }
            assert_eq!(restored, values.row(u), "row {u} must restore bit-for-bit");
        }
    }

    #[test]
    fn gather_indices_are_absolute_and_match_d() {
        let cfg = NmConfig::new(2, 8, 16).unwrap();
        let sb = sparse(40, 32, cfg, 11); // k=40 pads to 40 (M=8): w=10
        let sm = SlicedMatrix::build(&sb, SlicedLayout::new(1, 2).unwrap()).unwrap();
        let d = sb.indices();
        for s in 0..sm.slices() {
            for (wi, pos) in sm.slice_windows(s).enumerate() {
                let jw = sm.perm().perm[pos];
                let idx = sm.gather_span(s, wi, 0, sm.w());
                for (u, &got) in idx.iter().enumerate() {
                    let want = u / cfg.n * cfg.m + d.get(u, jw) as usize;
                    assert_eq!(got as usize, want);
                }
                // Partial ranges view the same stream.
                assert_eq!(sm.gather_span(s, wi, 2, 5), &idx[2..5]);
            }
        }
    }

    #[test]
    fn ragged_window_count_leaves_a_short_tail_slice() {
        let cfg = NmConfig::new(2, 4, 4).unwrap();
        let sb = sparse(16, 28, cfg, 13); // q = 7 windows
        let sm = SlicedMatrix::build(&sb, SlicedLayout::new(4, 4).unwrap()).unwrap();
        assert_eq!(sm.slices(), 2);
        assert_eq!(sm.slice_windows(0).len(), 4);
        assert_eq!(sm.slice_windows(1).len(), 3);
        assert_eq!(sm.width(0) + sm.width(1), 28);
    }

    #[test]
    fn storage_accounting_matches_the_analytic_formula() {
        let cfg = NmConfig::new(2, 16, 4).unwrap();
        let sb = sparse(64, 64, cfg, 15);
        let sm = SlicedMatrix::build(&sb, SlicedLayout::DEFAULT).unwrap();
        let (w, n, q) = (sb.w(), sb.cols(), sb.q());
        assert_eq!(sm.storage_bytes(), w * n * 4 + w * q * 4 + q * 4);
        assert_eq!(
            sm.storage_bytes(),
            SlicedLayout::DEFAULT.storage_bytes_for(w, n, q)
        );
        // The panels really hold every value and index exactly once.
        assert_eq!(sm.values.len(), w * n);
        assert_eq!(sm.gather.len(), w * q);
    }
}
