//! Error types shared across the NM-SpMM crates.

use std::fmt;

/// Errors produced by format construction, compression and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NmError {
    /// An `N:M` / `L` combination that violates the format rules
    /// (`0 < N <= M`, `L >= 1`, `M` a power of two for bit-packed indices).
    InvalidConfig {
        /// Human-readable reason for the rejection.
        reason: String,
    },
    /// Two operands whose shapes do not agree for the requested operation.
    DimensionMismatch {
        /// Description of the expected shape.
        expected: String,
        /// Description of the shape that was provided.
        found: String,
    },
    /// An index-matrix entry that points outside its pruning window, or is
    /// not strictly increasing within a window.
    CorruptIndex {
        /// Row of the index matrix `D` where the fault was found.
        row: usize,
        /// Column (pruning-window index) of the faulty entry.
        col: usize,
        /// The offending value.
        value: u32,
        /// Upper bound (exclusive) the value had to respect.
        bound: u32,
    },
    /// Blocking parameters that violate a hardware constraint
    /// (shared-memory capacity, register budget, warp geometry).
    InvalidBlocking {
        /// Human-readable reason for the rejection.
        reason: String,
    },
    /// A persistence failure: on-disk artifact I/O, or a malformed
    /// serialized document (e.g. the JSON plan cache).
    Persist {
        /// Human-readable reason for the failure.
        reason: String,
    },
    /// A capability the current host (or build target) does not provide —
    /// e.g. requesting the AVX-512 micro-kernel on a machine without
    /// `avx512f`, or the NEON kernel on x86.
    Unsupported {
        /// Human-readable reason for the rejection.
        reason: String,
    },
    /// A serving request rejected at admission because the bounded
    /// submission queue is at capacity — structured backpressure, never
    /// silent blocking or a silent drop. Retry later or shed load.
    Overloaded {
        /// The queue bound that was hit.
        capacity: usize,
    },
    /// A serving request shed before any compute was spent on it because
    /// its deadline had already passed while it sat in the queue.
    DeadlineExceeded {
        /// The request's latency budget, in milliseconds.
        deadline_ms: u64,
        /// How long the request had been queued when it was shed, in
        /// milliseconds.
        queued_ms: u64,
    },
    /// Work abandoned for a reason other than load or deadline — e.g. the
    /// serving front-end shut down while the request was still queued.
    /// Every abandoned request receives this structured error; nothing is
    /// ever dropped silently.
    Canceled {
        /// Human-readable reason for the cancellation.
        reason: String,
    },
}

impl fmt::Display for NmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NmError::InvalidConfig { reason } => write!(f, "invalid N:M config: {reason}"),
            NmError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            NmError::CorruptIndex {
                row,
                col,
                value,
                bound,
            } => write!(
                f,
                "corrupt index matrix at D[{row}][{col}]: value {value} out of bound {bound}"
            ),
            NmError::InvalidBlocking { reason } => {
                write!(f, "invalid blocking parameters: {reason}")
            }
            NmError::Persist { reason } => {
                write!(f, "persistence failure: {reason}")
            }
            NmError::Unsupported { reason } => {
                write!(f, "unsupported on this host: {reason}")
            }
            NmError::Overloaded { capacity } => {
                write!(
                    f,
                    "server overloaded: submission queue at capacity {capacity}"
                )
            }
            NmError::DeadlineExceeded {
                deadline_ms,
                queued_ms,
            } => write!(
                f,
                "deadline exceeded: {deadline_ms} ms budget, shed after {queued_ms} ms queued"
            ),
            NmError::Canceled { reason } => {
                write!(f, "request canceled: {reason}")
            }
        }
    }
}

impl std::error::Error for NmError {}

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, NmError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = NmError::InvalidConfig {
            reason: "N must not exceed M".into(),
        };
        assert!(e.to_string().contains("N must not exceed M"));

        let e = NmError::DimensionMismatch {
            expected: "k=128".into(),
            found: "k=64".into(),
        };
        assert!(e.to_string().contains("k=128"));
        assert!(e.to_string().contains("k=64"));

        let e = NmError::CorruptIndex {
            row: 3,
            col: 7,
            value: 9,
            bound: 8,
        };
        let s = e.to_string();
        assert!(s.contains("D[3][7]"));
        assert!(s.contains('9'));

        let e = NmError::InvalidBlocking {
            reason: "shared memory exceeded".into(),
        };
        assert!(e.to_string().contains("shared memory"));

        let e = NmError::Persist {
            reason: "cache file truncated".into(),
        };
        assert!(e.to_string().contains("cache file truncated"));

        let e = NmError::Unsupported {
            reason: "avx512 micro-kernel needs avx512f".into(),
        };
        assert!(e.to_string().contains("avx512f"));

        let e = NmError::Overloaded { capacity: 128 };
        assert!(e.to_string().contains("128"));

        let e = NmError::DeadlineExceeded {
            deadline_ms: 50,
            queued_ms: 75,
        };
        let s = e.to_string();
        assert!(s.contains("50") && s.contains("75"));

        let e = NmError::Canceled {
            reason: "server shut down".into(),
        };
        assert!(e.to_string().contains("server shut down"));
    }

    #[test]
    fn errors_are_comparable() {
        let a = NmError::InvalidConfig { reason: "x".into() };
        let b = NmError::InvalidConfig { reason: "x".into() };
        assert_eq!(a, b);
    }
}
