//! Batched and vector (GEMV) entry points — the inference serving shapes.
//!
//! Decoding workloads multiply many small activation batches against the
//! same pruned weights. Re-using one weight compression (and one offline
//! [`crate::colinfo::PackedLayout`]) across calls is the whole point of the
//! offline/online split; this module packages that pattern:
//!
//! * [`BatchedSpmm`] — amortizes pre-processing across repeated calls,
//! * [`spmv`] — the `m = 1` case with a dedicated cache-friendly loop
//!   (gather-dot per output column group instead of tile blocking).

use crate::colinfo::{preprocess, PackedLayout};
use crate::error::{NmError, Result};
use crate::matrix::MatrixF32;
use crate::parallel::{spmm_parallel, spmm_parallel_prepacked, CpuSpmmOptions, Strategy};
use crate::pattern::SparsityClass;
use crate::sparse::NmSparseMatrix;

/// A compiled multiplier: compressed weights + (optional) packed layout +
/// tuned options, reusable across activation batches.
#[derive(Debug, Clone)]
pub struct BatchedSpmm {
    weights: NmSparseMatrix,
    layout: Option<PackedLayout>,
    opts: CpuSpmmOptions,
}

impl BatchedSpmm {
    /// Compile a multiplier for `weights`, deciding the data path once.
    pub fn new(weights: NmSparseMatrix) -> Result<Self> {
        Self::with_options(weights, CpuSpmmOptions::default())
    }

    /// Compile with explicit options; the packing layout is prepared here
    /// (offline) when the strategy calls for it.
    pub fn with_options(weights: NmSparseMatrix, opts: CpuSpmmOptions) -> Result<Self> {
        let cfg = weights.cfg();
        let packing = match opts.strategy {
            Strategy::Packing => true,
            Strategy::NonPacking => false,
            Strategy::Auto => cfg.class() == SparsityClass::High,
        };
        let layout = if packing {
            let ks = opts.ks.max(cfg.m).div_ceil(cfg.m) * cfg.m;
            let ks = ks.min(weights.k().div_ceil(cfg.m).max(1) * cfg.m);
            let ns = opts.ns.max(cfg.l).div_ceil(cfg.l) * cfg.l;
            let ns = ns.min(weights.cols().div_ceil(cfg.l).max(1) * cfg.l);
            Some(preprocess(&weights, ks, ns)?)
        } else {
            None
        };
        Ok(Self {
            weights,
            layout,
            opts,
        })
    }

    /// The compiled weights.
    pub fn weights(&self) -> &NmSparseMatrix {
        &self.weights
    }

    /// Whether the packing path was compiled in.
    pub fn uses_packing(&self) -> bool {
        self.layout.is_some()
    }

    /// Multiply one activation batch: `C[m][n] = A[m][k] ⊛ (B′, D)`.
    pub fn forward(&self, a: &MatrixF32) -> Result<MatrixF32> {
        if a.cols() != self.weights.k() {
            return Err(NmError::DimensionMismatch {
                expected: format!("A with k = {}", self.weights.k()),
                found: format!("A with k = {}", a.cols()),
            });
        }
        Ok(match &self.layout {
            Some(layout) => spmm_parallel_prepacked(a, &self.weights, layout, &self.opts),
            None => {
                let opts = CpuSpmmOptions {
                    strategy: Strategy::NonPacking,
                    ..self.opts
                };
                spmm_parallel(a, &self.weights, &opts)
            }
        })
    }

    /// Multiply a whole batch of activation matrices.
    pub fn forward_batch(&self, batch: &[MatrixF32]) -> Result<Vec<MatrixF32>> {
        batch.iter().map(|a| self.forward(a)).collect()
    }
}

/// Sparse matrix-vector product `y[n] = x[k] ⊛ (B′, D)` — the decode-step
/// shape (`m = 1`). A flat gather-scale loop beats tile blocking here.
pub fn spmv(x: &[f32], sb: &NmSparseMatrix) -> Result<Vec<f32>> {
    if x.len() != sb.k() {
        return Err(NmError::DimensionMismatch {
            expected: format!("x of length {}", sb.k()),
            found: format!("x of length {}", x.len()),
        });
    }
    let cfg = sb.cfg();
    let n = sb.cols();
    let (w, q) = (sb.w(), sb.q());
    let values = sb.values();
    let d = sb.indices();

    let mut y = vec![0f32; n];
    for u in 0..w {
        let base = u / cfg.n * cfg.m;
        let b_row = values.row(u);
        for j in 0..q {
            let src = base + d.get(u, j) as usize;
            let xv = if src < x.len() { x[src] } else { 0.0 };
            if xv == 0.0 {
                continue;
            }
            let lo = j * cfg.l;
            let hi = ((j + 1) * cfg.l).min(n);
            for (yv, bv) in y[lo..hi].iter_mut().zip(&b_row[lo..hi]) {
                *yv += xv * bv;
            }
        }
    }
    Ok(y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::NmConfig;
    use crate::prune::PrunePolicy;
    use crate::spmm::spmm_reference;

    fn weights(cfg: NmConfig) -> NmSparseMatrix {
        let b = MatrixF32::random(128, 96, 31);
        NmSparseMatrix::prune(&b, cfg, PrunePolicy::Random { seed: 3 }).unwrap()
    }

    #[test]
    fn forward_matches_reference_both_paths() {
        for cfg in [
            NmConfig::new(8, 16, 8).unwrap(),
            NmConfig::new(2, 16, 8).unwrap(),
        ] {
            let sb = weights(cfg);
            let mult = BatchedSpmm::new(sb.clone()).unwrap();
            assert_eq!(
                mult.uses_packing(),
                cfg.sparsity() >= crate::pattern::SPARSITY_THRESHOLD
            );
            let a = MatrixF32::random(24, 128, 5);
            let got = mult.forward(&a).unwrap();
            let want = spmm_reference(&a, &sb);
            assert!(got.allclose(&want, 1e-3, 1e-4), "{cfg}");
        }
    }

    #[test]
    fn batch_processing_is_consistent() {
        let sb = weights(NmConfig::new(2, 16, 8).unwrap());
        let mult = BatchedSpmm::new(sb.clone()).unwrap();
        let batch: Vec<MatrixF32> = (0..4).map(|i| MatrixF32::random(8, 128, 100 + i)).collect();
        let outs = mult.forward_batch(&batch).unwrap();
        assert_eq!(outs.len(), 4);
        for (a, c) in batch.iter().zip(&outs) {
            assert!(c.allclose(&spmm_reference(a, &sb), 1e-3, 1e-4));
        }
    }

    #[test]
    fn forward_rejects_bad_k() {
        let mult = BatchedSpmm::new(weights(NmConfig::new(4, 16, 8).unwrap())).unwrap();
        let a = MatrixF32::random(4, 64, 1);
        assert!(mult.forward(&a).is_err());
    }

    #[test]
    fn spmv_matches_reference_row() {
        let sb = weights(NmConfig::new(4, 16, 8).unwrap());
        let x: Vec<f32> = MatrixF32::random(1, 128, 9).into_vec();
        let y = spmv(&x, &sb).unwrap();
        let a = MatrixF32::from_vec(1, 128, x);
        let want = spmm_reference(&a, &sb);
        let got = MatrixF32::from_vec(1, sb.cols(), y);
        assert!(got.allclose(&want, 1e-3, 1e-4));
    }

    #[test]
    fn spmv_rejects_bad_length() {
        let sb = weights(NmConfig::new(4, 16, 8).unwrap());
        assert!(spmv(&[0.0; 12], &sb).is_err());
    }

    #[test]
    fn explicit_strategy_is_honored() {
        let sb = weights(NmConfig::new(8, 16, 8).unwrap()); // moderate
        let forced = BatchedSpmm::with_options(
            sb.clone(),
            CpuSpmmOptions {
                strategy: Strategy::Packing,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(forced.uses_packing(), "explicit packing must be honored");
        let a = MatrixF32::random(8, 128, 11);
        assert!(forced
            .forward(&a)
            .unwrap()
            .allclose(&spmm_reference(&a, &sb), 1e-3, 1e-4));
    }
}
