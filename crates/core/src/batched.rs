//! The vector (GEMV) entry point — the decode-step inference shape.
//!
//! Decoding workloads multiply many small activation batches against the
//! same pruned weights, amortizing one weight compression (and one offline
//! [`crate::colinfo::PackedLayout`]) across calls — the offline/online
//! split the paper's accounting is built on. The *matrix* side of that
//! pattern lives in the `nm-kernels` session API (`Session::load` →
//! `PreparedLayer::forward`/`forward_batch`), which owns the plan, the
//! backend and the staged state behind one reusable handle; the
//! `BatchedSpmm` type that used to live here was folded into it.
//!
//! The decode side now lives there too: `PreparedLayer::forward_vec`
//! runs the `m = 1` shape through the prepared SpMV path — the same
//! staged `B′`, `col_info` packing and vectorized register-tile ladder
//! the matrix path uses, at zero additional offline cost. What remains
//! here is the dependency-free seed loop:
//!
//! * [`spmv`] — a thin, self-contained compatibility implementation
//!   (gather-scale per output column group, no staging, no SIMD).

use crate::error::{NmError, Result};
use crate::sparse::NmSparseMatrix;

/// Sparse matrix-vector product `y[n] = x[k] ⊛ (B′, D)` — the decode-step
/// shape (`m = 1`) as a single self-contained loop.
///
/// **Deprecated in favor of the prepared path.** This free function
/// re-reads the compressed operand cold on every call; the `nm-kernels`
/// session API (`PreparedLayer::forward_vec`, or `spmv_cpu_prepared` one
/// level lower) runs the same product through the staged, cache-blocked,
/// SIMD-dispatched ladder and amortizes all weight-derived work across
/// calls. It is kept as a dependency-free reference and compatibility
/// entry point — `nm-core` sits below the kernels crate and cannot reach
/// the prepared machinery itself.
pub fn spmv(x: &[f32], sb: &NmSparseMatrix) -> Result<Vec<f32>> {
    if x.len() != sb.k() {
        return Err(NmError::DimensionMismatch {
            expected: format!("x of length {}", sb.k()),
            found: format!("x of length {}", x.len()),
        });
    }
    let cfg = sb.cfg();
    let n = sb.cols();
    let (w, q) = (sb.w(), sb.q());
    let values = sb.values();
    let d = sb.indices();

    let mut y = vec![0f32; n];
    for u in 0..w {
        let base = u / cfg.n * cfg.m;
        let b_row = values.row(u);
        for j in 0..q {
            let src = base + d.get(u, j) as usize;
            let xv = if src < x.len() { x[src] } else { 0.0 };
            if xv == 0.0 {
                continue;
            }
            let lo = j * cfg.l;
            let hi = ((j + 1) * cfg.l).min(n);
            for (yv, bv) in y[lo..hi].iter_mut().zip(&b_row[lo..hi]) {
                *yv += xv * bv;
            }
        }
    }
    Ok(y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::MatrixF32;
    use crate::pattern::NmConfig;
    use crate::prune::PrunePolicy;
    use crate::spmm::spmm_reference;

    fn weights(cfg: NmConfig) -> NmSparseMatrix {
        let b = MatrixF32::random(128, 96, 31);
        NmSparseMatrix::prune(&b, cfg, PrunePolicy::Random { seed: 3 }).unwrap()
    }

    #[test]
    fn spmv_matches_reference_row() {
        let sb = weights(NmConfig::new(4, 16, 8).unwrap());
        let x: Vec<f32> = MatrixF32::random(1, 128, 9).into_vec();
        let y = spmv(&x, &sb).unwrap();
        let a = MatrixF32::from_vec(1, 128, x);
        let want = spmm_reference(&a, &sb);
        let got = MatrixF32::from_vec(1, sb.cols(), y);
        assert!(got.allclose(&want, 1e-3, 1e-4));
    }

    #[test]
    fn spmv_matches_reference_at_high_sparsity() {
        let sb = weights(NmConfig::new(2, 16, 8).unwrap());
        let x: Vec<f32> = MatrixF32::random(1, 128, 17).into_vec();
        let y = spmv(&x, &sb).unwrap();
        let a = MatrixF32::from_vec(1, 128, x);
        let want = spmm_reference(&a, &sb);
        let got = MatrixF32::from_vec(1, sb.cols(), y);
        assert!(got.allclose(&want, 1e-3, 1e-4));
    }

    #[test]
    fn spmv_rejects_bad_length() {
        let sb = weights(NmConfig::new(4, 16, 8).unwrap());
        assert!(spmv(&[0.0; 12], &sb).is_err());
    }
}
