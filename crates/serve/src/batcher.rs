//! The continuous batcher: the single worker that drains the submission
//! queue, coalesces compatible requests, and dispatches them through the
//! prepared layer.
//!
//! ## Dispatch policy
//!
//! One batch per loop iteration, always from the highest-priority
//! non-empty pool; within a pool, dispatch is strictly FIFO and a batch
//! coalesces the **contiguous same-band prefix** (all-decode or
//! all-prefill) so reordering never happens. Decode requests stack into
//! one skinny `forward` call — bit-identical per row to serving them
//! individually, but streaming the packed `B′` once for the whole stack
//! (the memory-bound regime's goodput win). Prefill requests fan through
//! `forward_batch`.
//!
//! ## Deadline shedding
//!
//! Expired requests are shed at **batch formation** — after queueing,
//! before any compute — resolving their tickets with
//! [`NmError::DeadlineExceeded`]. The admission counter decrements at the
//! same point, so "queued" means exactly "admitted but not yet
//! dispatched or shed".

use crate::config::{Priority, ServerConfig};
use crate::request::{BatchKind, Completion, DispatchInfo, Request, RequestTiming, Workload};
use crate::stats::Recorder;
use nm_core::error::{NmError, Result};
use nm_core::matrix::MatrixF32;
use nm_kernels::session::PreparedLayer;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long the idle worker blocks on the channel before re-checking the
/// paused flag and pool state.
const IDLE_TICK: Duration = Duration::from_millis(2);

/// State shared between the [`Server`](crate::Server) front and the
/// batcher thread.
#[derive(Debug)]
pub(crate) struct Shared {
    /// Requests admitted but not yet dispatched or shed — the
    /// authoritative queue depth the admission bound is enforced on.
    pub(crate) depth: AtomicUsize,
    /// Harness hook: while set, the batcher keeps draining the channel
    /// into its pools but forms no batches.
    pub(crate) paused: AtomicBool,
    /// Counters + rolling latency window.
    pub(crate) stats: Recorder,
}

impl Shared {
    pub(crate) fn new() -> Self {
        Self {
            depth: AtomicUsize::new(0),
            paused: AtomicBool::new(false),
            stats: Recorder::new(),
        }
    }
}

/// One batch member after formation: where to reply and what it waited.
struct Member {
    reply: crossbeam_channel::Sender<Result<Completion>>,
    queue_wait: Duration,
}

pub(crate) struct Batcher {
    rx: crossbeam_channel::Receiver<Request>,
    layer: Arc<PreparedLayer>,
    shared: Arc<Shared>,
    cfg: ServerConfig,
    /// Per-priority FIFO pools, indexed by `Priority as usize`.
    pools: [VecDeque<Request>; 2],
    next_order: u64,
}

impl Batcher {
    pub(crate) fn new(
        rx: crossbeam_channel::Receiver<Request>,
        layer: Arc<PreparedLayer>,
        shared: Arc<Shared>,
        cfg: ServerConfig,
    ) -> Self {
        Self {
            rx,
            layer,
            shared,
            cfg,
            pools: [VecDeque::new(), VecDeque::new()],
            next_order: 0,
        }
    }

    /// The worker loop: drain → (maybe linger) → dispatch one batch →
    /// repeat, until every sender is gone and the pools are dry.
    pub(crate) fn run(mut self) {
        let mut connected = true;
        loop {
            if connected {
                connected = self.fill();
            }
            // Once the server is gone nothing can unpause us, so force
            // the drain rather than strand admitted requests.
            self.dispatch_one(!connected);
            if !connected && self.pools_empty() {
                break;
            }
        }
    }

    fn paused(&self) -> bool {
        self.shared.paused.load(Ordering::Acquire)
    }

    fn pools_empty(&self) -> bool {
        self.pools.iter().all(VecDeque::is_empty)
    }

    fn pool_push(&mut self, r: Request) {
        self.pools[r.priority as usize].push_back(r);
    }

    /// Drain the channel into the pools; block briefly when idle, or
    /// linger for joiners when a non-full batch is ready. Returns `false`
    /// once every sender has disconnected.
    fn fill(&mut self) -> bool {
        loop {
            match self.rx.try_recv() {
                Ok(r) => self.pool_push(r),
                Err(crossbeam_channel::TryRecvError::Empty) => break,
                Err(crossbeam_channel::TryRecvError::Disconnected) => return false,
            }
        }
        if self.paused() || self.pools_empty() {
            return match self.rx.recv_timeout(IDLE_TICK) {
                Ok(r) => {
                    self.pool_push(r);
                    true
                }
                Err(crossbeam_channel::RecvTimeoutError::Timeout) => true,
                Err(crossbeam_channel::RecvTimeoutError::Disconnected) => false,
            };
        }
        // Continuous batching: hold the door open while the leading batch
        // still has room — joiners ride along. Each arrival re-arms the
        // `linger_gap` timer, so a concurrent burst coalesces fully, but
        // the window closes as soon as arrivals stop (or at the `linger`
        // hard cap) instead of taxing every batch the full window.
        let deadline = Instant::now() + self.cfg.linger;
        while !self.leading_batch_full() {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let wait = self.cfg.linger_gap.min(deadline - now);
            match self.rx.recv_timeout(wait) {
                Ok(r) => self.pool_push(r),
                Err(crossbeam_channel::RecvTimeoutError::Timeout) => break,
                Err(crossbeam_channel::RecvTimeoutError::Disconnected) => return false,
            }
        }
        true
    }

    /// Whether the batch that would dispatch next already coalesces its
    /// band's maximum — lingering further buys nothing.
    fn leading_batch_full(&self) -> bool {
        for p in Priority::ALL {
            let pool = &self.pools[p as usize];
            let Some(front) = pool.front() else { continue };
            let kind = front.workload.kind();
            let cap = self.batch_cap(kind);
            let prefix = pool
                .iter()
                .take_while(|r| r.workload.kind() == kind)
                .count();
            return prefix >= cap;
        }
        false
    }

    fn batch_cap(&self, kind: BatchKind) -> usize {
        match kind {
            BatchKind::Decode => self.cfg.max_decode_batch,
            BatchKind::Prefill => self.cfg.max_batch,
        }
    }

    /// Form and execute at most one batch, highest priority first.
    fn dispatch_one(&mut self, force: bool) {
        if !force {
            if self.paused() {
                return;
            }
            // Dispatch only from a drained queue: an unpause racing the
            // idle tick could otherwise dispatch a stale pool prefix
            // while already-submitted joiners — possibly higher-priority
            // ones — still sit in the channel. The emptiness check reads
            // after the `paused` acquire load, so every send that
            // preceded the resume is visible to it; a non-empty channel
            // just loops back through `fill`.
            if !self.rx.is_empty() {
                return;
            }
        }
        let now = Instant::now();
        for p in Priority::ALL {
            if let Some((batch, kind)) = self.form_batch(p as usize, now) {
                self.execute(batch, kind);
                return;
            }
        }
    }

    /// Pop the FIFO prefix of one pool into a batch: expired requests are
    /// shed (structured error, no compute), live requests coalesce while
    /// they stay on one band and under its cap.
    fn form_batch(&mut self, pool: usize, now: Instant) -> Option<(Vec<Request>, BatchKind)> {
        let mut batch: Vec<Request> = Vec::new();
        let mut kind: Option<BatchKind> = None;
        while let Some(front) = self.pools[pool].front() {
            let front_kind = front.workload.kind();
            if let Some(k) = kind {
                if front_kind != k || batch.len() >= self.batch_cap(k) {
                    break;
                }
            }
            let r = self.pools[pool].pop_front().expect("front exists");
            // Leaving the queue — whether into the batch or shed — is
            // where the admission counter gives its slot back.
            self.shared.depth.fetch_sub(1, Ordering::AcqRel);
            if r.expired(now) {
                self.shed(r, now);
                continue;
            }
            kind = Some(front_kind);
            batch.push(r);
        }
        kind.map(|k| (batch, k))
    }

    fn shed(&self, r: Request, now: Instant) {
        self.shared.stats.shed();
        let queued = now.duration_since(r.enqueued);
        let budget = r.deadline.unwrap_or_default();
        r.resolve(Err(NmError::DeadlineExceeded {
            deadline_ms: budget.as_millis() as u64,
            queued_ms: queued.as_millis() as u64,
        }));
    }

    /// Run one formed batch through the layer and resolve every ticket.
    fn execute(&mut self, batch: Vec<Request>, kind: BatchKind) {
        self.next_order += 1;
        let order = self.next_order;
        let size = batch.len();
        self.shared.stats.batch_dispatched(size);
        let dispatched = Instant::now();

        let mut members = Vec::with_capacity(size);
        let mut decode_rows: Vec<f32> = Vec::new();
        let mut prefill_mats: Vec<MatrixF32> = Vec::new();
        for r in batch {
            members.push(Member {
                reply: r.reply,
                queue_wait: dispatched.duration_since(r.enqueued),
            });
            match r.workload {
                Workload::Decode(x) => decode_rows.extend_from_slice(&x),
                Workload::Prefill(a) => prefill_mats.push(a),
            }
        }
        let info = |n| DispatchInfo {
            order,
            batch_size: size,
            kind: n,
        };

        match kind {
            BatchKind::Decode => {
                // Stack the vectors into one skinny matrix: the fused
                // call streams B′ once for the whole stack, and each row
                // of the product is bit-identical to the member's own
                // `forward_vec` result.
                let k = self.layer.weights().k();
                let stacked = MatrixF32::from_vec(size, k, decode_rows);
                match self.layer.forward(&stacked) {
                    Ok(run) => {
                        let compute = Duration::from_secs_f64(run.wall_seconds);
                        let n = run.c.cols();
                        for (i, m) in members.into_iter().enumerate() {
                            let timing = RequestTiming {
                                queue_wait: m.queue_wait,
                                compute,
                            };
                            self.shared.stats.completed(timing);
                            let _ = m.reply.send(Ok(Completion {
                                c: MatrixF32::from_vec(1, n, run.c.row(i).to_vec()),
                                timing,
                                dispatch: info(kind),
                            }));
                        }
                    }
                    Err(e) => fail_batch(members, &e),
                }
            }
            BatchKind::Prefill => match self.layer.forward_batch(&prefill_mats) {
                Ok(batch_run) => {
                    for (m, run) in members.into_iter().zip(batch_run.runs) {
                        let timing = RequestTiming {
                            queue_wait: m.queue_wait,
                            compute: Duration::from_secs_f64(run.wall_seconds),
                        };
                        self.shared.stats.completed(timing);
                        let _ = m.reply.send(Ok(Completion {
                            c: run.c,
                            timing,
                            dispatch: info(kind),
                        }));
                    }
                }
                Err(e) => fail_batch(members, &e),
            },
        }
    }
}

/// Shapes are validated at submission, so a mid-batch kernel error is
/// exceptional — but it still resolves every ticket structurally instead
/// of dropping them.
fn fail_batch(members: Vec<Member>, e: &NmError) {
    for m in members {
        let _ = m.reply.send(Err(e.clone()));
    }
}
