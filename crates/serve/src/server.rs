//! The server front: admission control over a bounded queue, submission
//! of prefill and decode work, pause/resume, stats, and drain-on-drop.

use crate::batcher::{Batcher, Shared};
use crate::config::{ServerConfig, SubmitOptions};
use crate::request::{Request, Ticket, Workload};
use crate::stats::ServerStats;
use nm_core::error::{NmError, Result};
use nm_core::matrix::MatrixF32;
use nm_kernels::session::PreparedLayer;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A serving front-end over one [`PreparedLayer`]: a bounded submission
/// queue with admission control, a continuous batcher, per-request
/// deadlines, and a [`ServerStats`] snapshot API.
///
/// ```
/// use gpu_sim::device::a100_80g;
/// use nm_core::matrix::MatrixF32;
/// use nm_core::pattern::NmConfig;
/// use nm_core::sparse::NmSparseMatrix;
/// use nm_kernels::SessionBuilder;
/// use nm_serve::{Server, ServerConfig, SubmitOptions};
///
/// let cfg = NmConfig::new(2, 8, 16).expect("config");
/// let b = MatrixF32::random(64, 32, 1);
/// let sb = NmSparseMatrix::prune_magnitude(&b, cfg).expect("prune");
/// let mut session = SessionBuilder::new(a100_80g()).build().expect("session");
/// let layer = session.load(sb, 4).expect("load");
///
/// let server = Server::start(layer, ServerConfig::default()).expect("server");
/// let ticket = server
///     .submit_decode(vec![1.0; 64], SubmitOptions::default())
///     .expect("admitted");
/// let done = ticket.wait().expect("served");
/// assert_eq!(done.c.shape(), (1, 32));
/// ```
///
/// Dropping the server **drains** it: every admitted request still
/// resolves (served or shed), then the batcher thread exits and is
/// joined. No request is ever dropped without a structured answer.
#[derive(Debug)]
pub struct Server {
    tx: Option<crossbeam_channel::Sender<Request>>,
    worker: Option<std::thread::JoinHandle<()>>,
    shared: Arc<Shared>,
    layer: Arc<PreparedLayer>,
    cfg: ServerConfig,
    next_id: AtomicU64,
}

impl Server {
    /// Validate `cfg`, then start the batcher thread over `layer`.
    ///
    /// # Errors
    /// [`NmError::InvalidConfig`] for out-of-band knobs (zero capacities,
    /// decode coalescing past the planner's decode band).
    pub fn start(layer: impl Into<Arc<PreparedLayer>>, cfg: ServerConfig) -> Result<Server> {
        cfg.validate()?;
        let layer = layer.into();
        let (tx, rx) = crossbeam_channel::bounded(cfg.queue_capacity);
        let shared = Arc::new(Shared::new());
        let batcher = Batcher::new(rx, layer.clone(), shared.clone(), cfg.clone());
        let worker = std::thread::Builder::new()
            .name("nm-serve-batcher".into())
            .spawn(move || batcher.run())
            .expect("spawn batcher thread");
        Ok(Server {
            tx: Some(tx),
            worker: Some(worker),
            shared,
            layer,
            cfg,
            next_id: AtomicU64::new(0),
        })
    }

    /// The prepared layer this server executes on.
    pub fn layer(&self) -> &PreparedLayer {
        &self.layer
    }

    /// The configuration this server runs under.
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// Submit one prefill request — a full activation matrix, coalesced
    /// with neighbors into `forward_batch` calls.
    ///
    /// # Errors
    /// [`NmError::DimensionMismatch`] before queueing when `a.cols()`
    /// disagrees with the layer's reduction depth;
    /// [`NmError::Overloaded`] when the queue is at capacity — the
    /// structured backpressure signal, never silent blocking.
    pub fn submit(&self, a: MatrixF32, opts: SubmitOptions) -> Result<Ticket> {
        if a.cols() != self.layer.weights().k() {
            return Err(NmError::DimensionMismatch {
                expected: format!("A with k = {}", self.layer.weights().k()),
                found: format!("A is {} x {}", a.rows(), a.cols()),
            });
        }
        self.enqueue(Workload::Prefill(a), opts)
    }

    /// Submit one decode request — a single activation vector, stacked
    /// with concurrent decode requests into one skinny `forward` call
    /// (bit-identical per row to serving it alone).
    ///
    /// # Errors
    /// As [`Server::submit`], with the length check on `x`.
    pub fn submit_decode(&self, x: Vec<f32>, opts: SubmitOptions) -> Result<Ticket> {
        if x.len() != self.layer.weights().k() {
            return Err(NmError::DimensionMismatch {
                expected: format!("x of length k = {}", self.layer.weights().k()),
                found: format!("x of length {}", x.len()),
            });
        }
        self.enqueue(Workload::Decode(x), opts)
    }

    fn enqueue(&self, workload: Workload, opts: SubmitOptions) -> Result<Ticket> {
        // Admission: the atomic depth counter is the authoritative bound.
        // It only decrements at batch formation (or shed), so "admitted"
        // slots cover both the channel and the batcher's pools.
        let cap = self.cfg.queue_capacity;
        let mut cur = self.shared.depth.load(Ordering::Relaxed);
        loop {
            if cur >= cap {
                self.shared.stats.rejected();
                return Err(NmError::Overloaded { capacity: cap });
            }
            match self.shared.depth.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (reply, rx) = crossbeam_channel::bounded(1);
        let request = Request {
            workload,
            priority: opts.priority,
            enqueued: Instant::now(),
            deadline: opts.deadline.or(self.cfg.default_deadline),
            reply,
        };
        let tx = self.tx.as_ref().expect("sender alive while server alive");
        if tx.try_send(request).is_err() {
            // Unreachable while the invariant above holds (channel
            // occupancy ≤ depth ≤ capacity), but give the slot back and
            // answer structurally rather than trust it blindly.
            self.shared.depth.fetch_sub(1, Ordering::AcqRel);
            self.shared.stats.rejected();
            return Err(NmError::Overloaded { capacity: cap });
        }
        self.shared.stats.submitted();
        Ok(Ticket { id, rx })
    }

    /// Requests currently queued: admitted but not yet dispatched into a
    /// batch or shed.
    pub fn queue_depth(&self) -> usize {
        self.shared.depth.load(Ordering::Acquire)
    }

    /// Point-in-time counters + rolling latency distribution.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats.snapshot(self.queue_depth())
    }

    /// Harness hook: hold the batcher — requests keep being admitted (and
    /// the queue keeps filling toward its bound) but no batch forms until
    /// [`Server::resume`]. This is what makes backpressure and ordering
    /// tests deterministic; production callers never need it.
    pub fn pause(&self) {
        self.shared.paused.store(true, Ordering::Release);
    }

    /// Release a [`Server::pause`] hold.
    pub fn resume(&self) {
        self.shared.paused.store(false, Ordering::Release);
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // A paused server still owes answers: release the hold, hang up
        // the submission side, and wait for the batcher to drain.
        self.resume();
        drop(self.tx.take());
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Priority;
    use gpu_sim::device::a100_80g;
    use nm_core::pattern::NmConfig;
    use nm_core::sparse::NmSparseMatrix;
    use nm_core::spmm::spmm_reference;
    use nm_kernels::SessionBuilder;
    use std::time::Duration;

    fn layer(k: usize, n: usize, rows: usize) -> (PreparedLayer, NmSparseMatrix) {
        let cfg = NmConfig::new(2, 8, 16).unwrap();
        let sb = NmSparseMatrix::prune_magnitude(&MatrixF32::random(k, n, 3), cfg).unwrap();
        let mut s = SessionBuilder::new(a100_80g()).build().unwrap();
        (s.load(sb.clone(), rows).unwrap(), sb)
    }

    #[test]
    fn serves_prefill_and_decode_with_cost_split() {
        let (layer, sb) = layer(96, 64, 8);
        let server = Server::start(layer, ServerConfig::default()).unwrap();

        let a = MatrixF32::random(8, 96, 5);
        let done = server
            .submit(a.clone(), SubmitOptions::default())
            .unwrap()
            .wait()
            .unwrap();
        assert!(done.c.allclose(&spmm_reference(&a, &sb), 1e-3, 1e-4));
        assert!(done.timing.compute > Duration::ZERO);
        assert!(done.timing.e2e() >= done.timing.queue_wait);

        let x = MatrixF32::random(1, 96, 6);
        let done = server
            .submit_decode(x.row(0).to_vec(), SubmitOptions::default())
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(done.c.shape(), (1, 64));
        assert!(done.c.allclose(&spmm_reference(&x, &sb), 1e-3, 1e-4));

        let stats = server.stats();
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.rejected + stats.shed, 0);
        assert!(stats.p50_ms > 0.0);
    }

    #[test]
    fn bad_shapes_are_refused_before_queueing() {
        let (layer, _) = layer(64, 32, 4);
        let server = Server::start(layer, ServerConfig::default()).unwrap();
        let err = server
            .submit(MatrixF32::random(4, 48, 1), SubmitOptions::default())
            .unwrap_err();
        assert!(matches!(err, NmError::DimensionMismatch { .. }), "{err}");
        let err = server
            .submit_decode(vec![0.0; 63], SubmitOptions::default())
            .unwrap_err();
        assert!(matches!(err, NmError::DimensionMismatch { .. }), "{err}");
        assert_eq!(server.stats().submitted, 0);
    }

    #[test]
    fn queue_bound_rejects_with_overloaded() {
        let (layer, _) = layer(64, 32, 4);
        let server = Server::start(
            layer,
            ServerConfig {
                queue_capacity: 3,
                ..Default::default()
            },
        )
        .unwrap();
        server.pause();
        let mut tickets = Vec::new();
        for _ in 0..3 {
            tickets.push(
                server
                    .submit_decode(vec![1.0; 64], SubmitOptions::default())
                    .unwrap(),
            );
        }
        assert_eq!(server.queue_depth(), 3);
        let err = server
            .submit_decode(vec![1.0; 64], SubmitOptions::default())
            .unwrap_err();
        assert!(matches!(err, NmError::Overloaded { capacity: 3 }), "{err}");
        server.resume();
        for t in tickets {
            t.wait().unwrap();
        }
        let stats = server.stats();
        assert_eq!((stats.completed, stats.rejected), (3, 1));
        assert_eq!(server.queue_depth(), 0);
    }

    #[test]
    fn expired_requests_are_shed_without_compute() {
        let (layer, _) = layer(64, 32, 4);
        let server = Server::start(layer, ServerConfig::default()).unwrap();
        server.pause();
        let doomed = server
            .submit_decode(
                vec![1.0; 64],
                SubmitOptions::default().with_deadline(Duration::from_millis(1)),
            )
            .unwrap();
        std::thread::sleep(Duration::from_millis(10));
        server.resume();
        let err = doomed.wait().unwrap_err();
        match err {
            NmError::DeadlineExceeded {
                deadline_ms,
                queued_ms,
            } => {
                assert_eq!(deadline_ms, 1);
                assert!(queued_ms >= 10, "queued {queued_ms} ms");
            }
            other => panic!("expected DeadlineExceeded, got {other}"),
        }
        let stats = server.stats();
        assert_eq!((stats.shed, stats.completed), (1, 0));
    }

    #[test]
    fn drop_drains_pending_requests() {
        let (layer, sb) = layer(64, 32, 4);
        let server = Server::start(layer, ServerConfig::default()).unwrap();
        server.pause();
        let x = MatrixF32::random(1, 64, 9);
        let t = server
            .submit_decode(x.row(0).to_vec(), SubmitOptions::priority(Priority::Bulk))
            .unwrap();
        drop(server); // drop while paused: must still resolve the ticket
        let done = t.wait().unwrap();
        assert!(done.c.allclose(&spmm_reference(&x, &sb), 1e-3, 1e-4));
    }
}
