//! In-flight request plumbing: the internal queued request, the caller's
//! [`Ticket`], and the [`Completion`] a resolved ticket yields.

use crate::config::Priority;
use nm_core::error::{NmError, Result};
use nm_core::matrix::MatrixF32;
use std::time::{Duration, Instant};

/// What one queued request asks the layer to do.
#[derive(Debug)]
pub(crate) enum Workload {
    /// A full activation matrix — the prefill band, coalesced into
    /// `forward_batch` calls.
    Prefill(MatrixF32),
    /// A single activation vector — the decode band, stacked with other
    /// decode requests into one skinny `forward` call.
    Decode(Vec<f32>),
}

impl Workload {
    pub(crate) fn kind(&self) -> BatchKind {
        match self {
            Workload::Prefill(_) => BatchKind::Prefill,
            Workload::Decode(_) => BatchKind::Decode,
        }
    }
}

/// Which band a dispatched batch ran on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BatchKind {
    /// Members were full matrices, fanned through `forward_batch`.
    Prefill,
    /// Members were vectors, stacked into one skinny `forward` call.
    Decode,
}

impl BatchKind {
    /// Stable identifier (`prefill`, `decode`) for artifacts and logs.
    pub fn name(&self) -> &'static str {
        match self {
            BatchKind::Prefill => "prefill",
            BatchKind::Decode => "decode",
        }
    }
}

impl std::fmt::Display for BatchKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One request as it travels the queue.
#[derive(Debug)]
pub(crate) struct Request {
    pub(crate) workload: Workload,
    pub(crate) priority: Priority,
    pub(crate) enqueued: Instant,
    pub(crate) deadline: Option<Duration>,
    pub(crate) reply: crossbeam_channel::Sender<Result<Completion>>,
}

impl Request {
    /// Whether the deadline budget has expired as of `now`.
    pub(crate) fn expired(&self, now: Instant) -> bool {
        match self.deadline {
            Some(budget) => now.duration_since(self.enqueued) > budget,
            None => false,
        }
    }

    /// Resolve the ticket; a dropped receiver (caller gave up) is fine.
    pub(crate) fn resolve(self, result: Result<Completion>) {
        let _ = self.reply.send(result);
    }
}

/// The two halves of one served request's latency — the split the stats
/// pipeline and the bench artifact report.
///
/// * `queue_wait` — submission to batch formation: admission, the linger
///   window, and any time spent behind earlier work. This is the
///   serving layer's own cost.
/// * `compute` — the prepared layer's kernel wall for this request
///   ([`ExecRun::wall_seconds`](nm_kernels::backend::ExecRun)); for a
///   coalesced decode batch it is the wall of the **fused** call, shared
///   by every member — that sharing is the point of batching.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestTiming {
    /// Submission → dispatch into a batch.
    pub queue_wait: Duration,
    /// Kernel wall attributed to this request.
    pub compute: Duration,
}

impl RequestTiming {
    /// End-to-end latency: queue wait plus compute.
    pub fn e2e(&self) -> Duration {
        self.queue_wait + self.compute
    }
}

/// How the batcher dispatched the batch a request rode in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchInfo {
    /// Monotonic batch sequence number — every member of one batch shares
    /// it, and a lower number dispatched earlier. The FIFO-per-priority
    /// ordering proof reads this field.
    pub order: u64,
    /// Members in the batch this request rode in.
    pub batch_size: usize,
    /// Which band the batch ran on.
    pub kind: BatchKind,
}

/// A successfully served request: the product plus the cost accounting.
#[derive(Debug, Clone)]
pub struct Completion {
    /// The result matrix — `rows × n` for prefill, `1 × n` for decode.
    pub c: MatrixF32,
    /// Queue-wait / compute split for this request.
    pub timing: RequestTiming,
    /// Batch placement — order, size, band.
    pub dispatch: DispatchInfo,
}

/// The caller's handle to one submitted request. Resolve it with
/// [`Ticket::wait`]; every admitted request resolves exactly once — with
/// a [`Completion`] or a structured [`NmError`] — no request is ever
/// silently dropped.
#[derive(Debug)]
pub struct Ticket {
    pub(crate) id: u64,
    pub(crate) rx: crossbeam_channel::Receiver<Result<Completion>>,
}

impl Ticket {
    /// The request id this ticket tracks (monotonic per server).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Block until the request resolves. A server torn down before
    /// resolving (impossible through the public API, which drains on
    /// drop) maps to [`NmError::Canceled`] rather than a panic.
    pub fn wait(self) -> Result<Completion> {
        match self.rx.recv() {
            Ok(result) => result,
            Err(_) => Err(NmError::Canceled {
                reason: "server shut down before the request resolved".into(),
            }),
        }
    }

    /// As [`Ticket::wait`] with a timeout; `None` when still pending.
    pub fn wait_timeout(self, timeout: Duration) -> Option<Result<Completion>> {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => Some(result),
            Err(crossbeam_channel::RecvTimeoutError::Timeout) => None,
            Err(crossbeam_channel::RecvTimeoutError::Disconnected) => {
                Some(Err(NmError::Canceled {
                    reason: "server shut down before the request resolved".into(),
                }))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_adds_up_and_kinds_name_themselves() {
        let t = RequestTiming {
            queue_wait: Duration::from_millis(2),
            compute: Duration::from_millis(3),
        };
        assert_eq!(t.e2e(), Duration::from_millis(5));
        assert_eq!(BatchKind::Decode.to_string(), "decode");
        assert_eq!(BatchKind::Prefill.name(), "prefill");
    }

    #[test]
    fn expiry_is_budget_relative_to_enqueue() {
        let (tx, _rx) = crossbeam_channel::bounded(1);
        let r = Request {
            workload: Workload::Decode(vec![0.0]),
            priority: Priority::Interactive,
            enqueued: Instant::now(),
            deadline: Some(Duration::from_millis(1)),
            reply: tx,
        };
        assert!(!r.expired(r.enqueued));
        assert!(r.expired(r.enqueued + Duration::from_millis(2)));
        assert_eq!(r.workload.kind(), BatchKind::Decode);
    }

    #[test]
    fn ticket_maps_disconnect_to_canceled() {
        let (tx, rx) = crossbeam_channel::bounded::<Result<Completion>>(1);
        drop(tx);
        let t = Ticket { id: 7, rx };
        assert_eq!(t.id(), 7);
        assert!(matches!(t.wait().unwrap_err(), NmError::Canceled { .. }));
    }
}
