//! Server configuration and per-request submission options.

use nm_core::error::{NmError, Result};
use nm_kernels::DECODE_MAX_ROWS;
use std::time::Duration;

/// Two-level request priority. The batcher always dispatches every ready
/// [`Interactive`](Priority::Interactive) request before any
/// [`Bulk`](Priority::Bulk) one; **within** a priority, dispatch order is
/// strictly FIFO (submission order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Latency-sensitive traffic — served first.
    #[default]
    Interactive = 0,
    /// Throughput traffic — served when no interactive work is ready.
    Bulk = 1,
}

impl Priority {
    /// All priorities, highest first.
    pub const ALL: [Priority; 2] = [Priority::Interactive, Priority::Bulk];

    /// Stable identifier for artifacts and logs.
    pub fn name(&self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Bulk => "bulk",
        }
    }
}

impl std::fmt::Display for Priority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-request options for [`Server::submit`](crate::Server::submit).
#[derive(Debug, Clone, Copy, Default)]
pub struct SubmitOptions {
    /// Dispatch priority (default [`Priority::Interactive`]).
    pub priority: Priority,
    /// Deadline budget measured from submission. A request still queued
    /// when its budget expires is **shed before any compute is spent**,
    /// resolving its ticket with [`NmError::DeadlineExceeded`]. `None`
    /// falls back to [`ServerConfig::default_deadline`].
    pub deadline: Option<Duration>,
}

impl SubmitOptions {
    /// Options with an explicit priority.
    pub fn priority(priority: Priority) -> Self {
        Self {
            priority,
            deadline: None,
        }
    }

    /// Set the deadline budget.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// Configuration for a [`Server`](crate::Server).
///
/// The defaults suit a latency bench on one host: a 64-deep submission
/// queue, decode coalescing up to the full planner decode band
/// ([`DECODE_MAX_ROWS`]), prefill batches up to 8 members, and a 200 µs
/// linger window for joiners.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Admission bound: the maximum number of requests queued (submitted
    /// but not yet dispatched into a batch). Submissions beyond it fail
    /// fast with [`NmError::Overloaded`] — never silent blocking.
    pub queue_capacity: usize,
    /// Maximum members coalesced into one prefill
    /// [`forward_batch`](nm_kernels::session::PreparedLayer::forward_batch)
    /// call.
    pub max_batch: usize,
    /// Maximum decode vectors stacked into one skinny
    /// [`forward`](nm_kernels::session::PreparedLayer::forward) call.
    /// Capped by [`DECODE_MAX_ROWS`] — the planner's decode band is the
    /// evidence that stacking beyond it stops paying.
    pub max_decode_batch: usize,
    /// The **hard cap** on how long a forming batch waits for joiners
    /// before dispatching when it is not yet full. Continuous-batching
    /// style: requests arriving inside the window ride along.
    pub linger: Duration,
    /// The arrival-gap cutoff inside the linger window: once no new
    /// request arrives for this long, the window closes early and the
    /// batch dispatches. A burst of concurrent submissions coalesces
    /// fully (each arrival re-arms the gap), while a lone request only
    /// ever waits one gap — not the whole cap.
    pub linger_gap: Duration,
    /// Deadline applied to requests whose [`SubmitOptions::deadline`] is
    /// unset. `None` means such requests never expire.
    pub default_deadline: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            max_batch: 8,
            max_decode_batch: DECODE_MAX_ROWS,
            linger: Duration::from_micros(200),
            linger_gap: Duration::from_micros(50),
            default_deadline: None,
        }
    }
}

impl ServerConfig {
    /// Validate the knobs: non-zero capacities, decode coalescing within
    /// the planner's decode band.
    pub fn validate(&self) -> Result<()> {
        if self.queue_capacity == 0 {
            return Err(NmError::InvalidConfig {
                reason: "queue_capacity must be at least 1".into(),
            });
        }
        if self.max_batch == 0 || self.max_decode_batch == 0 {
            return Err(NmError::InvalidConfig {
                reason: "max_batch and max_decode_batch must be at least 1".into(),
            });
        }
        if self.max_decode_batch > DECODE_MAX_ROWS {
            return Err(NmError::InvalidConfig {
                reason: format!(
                    "max_decode_batch {} exceeds the decode band (DECODE_MAX_ROWS = {})",
                    self.max_decode_batch, DECODE_MAX_ROWS
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate_and_stay_in_the_decode_band() {
        let cfg = ServerConfig::default();
        cfg.validate().unwrap();
        assert!(cfg.max_decode_batch <= DECODE_MAX_ROWS);
        assert_eq!(Priority::default(), Priority::Interactive);
        assert!(Priority::Interactive < Priority::Bulk);
        assert_eq!(Priority::ALL[0].to_string(), "interactive");
    }

    #[test]
    fn bad_knobs_are_structured_errors() {
        for cfg in [
            ServerConfig {
                queue_capacity: 0,
                ..Default::default()
            },
            ServerConfig {
                max_batch: 0,
                ..Default::default()
            },
            ServerConfig {
                max_decode_batch: DECODE_MAX_ROWS + 1,
                ..Default::default()
            },
        ] {
            assert!(matches!(
                cfg.validate().unwrap_err(),
                NmError::InvalidConfig { .. }
            ));
        }
    }

    #[test]
    fn submit_options_compose() {
        let o = SubmitOptions::priority(Priority::Bulk).with_deadline(Duration::from_millis(5));
        assert_eq!(o.priority, Priority::Bulk);
        assert_eq!(o.deadline, Some(Duration::from_millis(5)));
    }
}
