//! # nm-serve — the serving front-end
//!
//! An async serving layer over the prepared-session API: a bounded
//! request queue with admission control, a continuous batcher that
//! coalesces concurrent requests into the kernels' batched entry points,
//! per-request deadlines, and a rolling latency-distribution snapshot.
//! This is the production layer the paper's offline/online split exists
//! for: [`Session::load`](nm_kernels::session::Session::load) pays the
//! staging cost once, and the [`Server`] turns one
//! [`PreparedLayer`](nm_kernels::session::PreparedLayer) into a
//! multi-tenant service.
//!
//! ## Architecture
//!
//! ```text
//!  submit()/submit_decode()         batcher thread (one)
//!  ───────────────────────╮   ╭──────────────────────────────────╮
//!   admission: atomic     │   │  drain channel → priority pools  │
//!   depth < capacity ─────┼──▶│  linger window (joiners ride)    │
//!   else Overloaded       │   │  shed expired (DeadlineExceeded) │
//!                         │   │  coalesce FIFO same-band prefix: │
//!   Ticket ◀──────────────╯   │   decode → stack → forward       │
//!     .wait()                 │   prefill → forward_batch        │
//!                             ╰──────────────────────────────────╯
//! ```
//!
//! * **Bounded queue, structured backpressure.** Admission is an atomic
//!   counter against [`ServerConfig::queue_capacity`]; a full queue
//!   refuses with [`NmError::Overloaded`](nm_core::error::NmError) — the
//!   caller always learns, immediately, instead of blocking silently.
//! * **Continuous batching.** The batcher holds a forming batch open for
//!   [`ServerConfig::linger`] so concurrent requests coalesce: decode
//!   vectors stack into one skinny `forward` call (bit-identical per row
//!   to serving each alone — the decode band's bandwidth-bound kernel
//!   streams the packed `B′` once for the whole stack, which is where
//!   the goodput comes from), prefill matrices fan through
//!   `forward_batch`. Decode stacking is capped at the planner's decode
//!   band ([`DECODE_MAX_ROWS`](nm_kernels::DECODE_MAX_ROWS)) — plan
//!   evidence, not a magic number.
//! * **Deadlines shed before compute.** A request whose budget expires
//!   while queued resolves with `NmError::DeadlineExceeded` at batch
//!   formation — no kernel time is spent on an answer nobody wants.
//! * **Two priorities, FIFO within each.** Interactive dispatches before
//!   bulk; within a priority, order is submission order, always.
//!
//! ## Where the time goes
//!
//! Every [`Completion`] carries a [`RequestTiming`] splitting the
//! request's latency into **queue wait** (submission → batch formation:
//! admission, linger, time behind earlier work — the serving layer's own
//! cost) and **compute** (the kernel wall
//! [`ExecRun::wall_seconds`](nm_kernels::backend::ExecRun) attributes to
//! the call; members of a fused decode batch share the fused call's
//! wall, which is precisely the amortization batching buys).
//! [`Server::stats`] folds those samples into rolling p50/p95/p99,
//! throughput, and shed/reject counters — the [`ServerStats`] snapshot
//! the `bench_serving` harness writes to `BENCH_serving.json`.

#![warn(missing_docs)]

mod batcher;
mod config;
mod request;
mod server;
mod stats;

pub use config::{Priority, ServerConfig, SubmitOptions};
pub use request::{BatchKind, Completion, DispatchInfo, RequestTiming, Ticket};
pub use server::Server;
pub use stats::ServerStats;
