//! Serving observability: per-request samples, rolling latency
//! percentiles, and the [`ServerStats`] snapshot API.

use crate::request::RequestTiming;
use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

/// How many completed requests the rolling window keeps for percentile
/// and throughput computation.
const WINDOW: usize = 4096;

#[derive(Debug)]
struct Sample {
    timing: RequestTiming,
    done: Instant,
}

#[derive(Debug, Default)]
struct Counters {
    submitted: u64,
    completed: u64,
    shed: u64,
    rejected: u64,
    batches: u64,
    batched_requests: u64,
}

#[derive(Debug)]
pub(crate) struct Recorder {
    inner: Mutex<(Counters, VecDeque<Sample>)>,
}

impl Recorder {
    pub(crate) fn new() -> Self {
        Self {
            inner: Mutex::new((Counters::default(), VecDeque::with_capacity(WINDOW))),
        }
    }

    pub(crate) fn submitted(&self) {
        self.inner.lock().unwrap().0.submitted += 1;
    }

    pub(crate) fn rejected(&self) {
        self.inner.lock().unwrap().0.rejected += 1;
    }

    pub(crate) fn shed(&self) {
        self.inner.lock().unwrap().0.shed += 1;
    }

    pub(crate) fn batch_dispatched(&self, size: usize) {
        let mut g = self.inner.lock().unwrap();
        g.0.batches += 1;
        g.0.batched_requests += size as u64;
    }

    pub(crate) fn completed(&self, timing: RequestTiming) {
        let mut g = self.inner.lock().unwrap();
        g.0.completed += 1;
        if g.1.len() == WINDOW {
            g.1.pop_front();
        }
        g.1.push_back(Sample {
            timing,
            done: Instant::now(),
        });
    }

    pub(crate) fn snapshot(&self, queue_depth: usize) -> ServerStats {
        let g = self.inner.lock().unwrap();
        let (c, samples) = (&g.0, &g.1);
        let mut e2e_ms: Vec<f64> = samples
            .iter()
            .map(|s| s.timing.e2e().as_secs_f64() * 1e3)
            .collect();
        e2e_ms.sort_by(|a, b| a.total_cmp(b));
        let mean = |f: fn(&RequestTiming) -> f64| -> f64 {
            if samples.is_empty() {
                0.0
            } else {
                samples.iter().map(|s| f(&s.timing)).sum::<f64>() / samples.len() as f64
            }
        };
        let throughput_rps = match (samples.front(), samples.back()) {
            (Some(first), Some(last)) if samples.len() > 1 => {
                let span = last.done.duration_since(first.done).as_secs_f64();
                if span > 0.0 {
                    (samples.len() - 1) as f64 / span
                } else {
                    0.0
                }
            }
            _ => 0.0,
        };
        ServerStats {
            submitted: c.submitted,
            completed: c.completed,
            shed: c.shed,
            rejected: c.rejected,
            queue_depth,
            batches: c.batches,
            mean_batch_size: if c.batches == 0 {
                0.0
            } else {
                c.batched_requests as f64 / c.batches as f64
            },
            p50_ms: percentile(&e2e_ms, 0.50),
            p95_ms: percentile(&e2e_ms, 0.95),
            p99_ms: percentile(&e2e_ms, 0.99),
            mean_queue_wait_ms: mean(|t| t.queue_wait.as_secs_f64() * 1e3),
            mean_compute_ms: mean(|t| t.compute.as_secs_f64() * 1e3),
            throughput_rps,
            window: samples.len(),
        }
    }
}

/// Nearest-rank percentile over an ascending-sorted slice; 0 when empty.
pub(crate) fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// A point-in-time snapshot of one server's counters and rolling latency
/// distribution — everything the bench artifact and an operator dashboard
/// need, taken from [`Server::stats`](crate::Server::stats).
///
/// Latency fields are over the rolling window of the last
/// [`window`](ServerStats::window) completions (end-to-end: queue wait +
/// compute); counters are lifetime totals.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerStats {
    /// Requests admitted past the queue bound (lifetime).
    pub submitted: u64,
    /// Requests resolved with a [`Completion`](crate::Completion).
    pub completed: u64,
    /// Requests shed at dispatch because their deadline expired while
    /// queued — resolved with `NmError::DeadlineExceeded`, no compute
    /// spent.
    pub shed: u64,
    /// Submissions refused at the door with `NmError::Overloaded`.
    pub rejected: u64,
    /// Requests currently queued (admitted, not yet dispatched).
    pub queue_depth: usize,
    /// Batches dispatched (lifetime).
    pub batches: u64,
    /// Mean members per dispatched batch — the coalescing factor.
    pub mean_batch_size: f64,
    /// Median end-to-end latency over the window, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile end-to-end latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile end-to-end latency, milliseconds.
    pub p99_ms: f64,
    /// Mean queue wait over the window, milliseconds.
    pub mean_queue_wait_ms: f64,
    /// Mean per-request kernel wall over the window, milliseconds.
    pub mean_compute_ms: f64,
    /// Completions per second across the window's time span.
    pub throughput_rps: f64,
    /// Completions currently in the rolling window.
    pub window: usize,
}

impl ServerStats {
    /// Completed minus nothing, over everything that left the system:
    /// the fraction of admitted requests that produced a result.
    pub fn goodput_fraction(&self) -> f64 {
        let finished = self.completed + self.shed;
        if finished == 0 {
            0.0
        } else {
            self.completed as f64 / finished as f64
        }
    }
}

impl std::fmt::Display for ServerStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} completed ({} shed, {} rejected), {} queued | p50 {:.2} ms, p99 {:.2} ms, \
             {:.1} req/s, mean batch {:.2}",
            self.completed,
            self.shed,
            self.rejected,
            self.queue_depth,
            self.p50_ms,
            self.p99_ms,
            self.throughput_rps,
            self.mean_batch_size,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn timing(ms: u64) -> RequestTiming {
        RequestTiming {
            queue_wait: Duration::from_millis(ms / 2),
            compute: Duration::from_millis(ms - ms / 2),
        }
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.50), 50.0);
        assert_eq!(percentile(&v, 0.95), 95.0);
        assert_eq!(percentile(&v, 0.99), 99.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }

    #[test]
    fn recorder_counts_and_summarizes() {
        let r = Recorder::new();
        for _ in 0..4 {
            r.submitted();
        }
        r.rejected();
        r.shed();
        r.batch_dispatched(3);
        for ms in [10, 20, 30] {
            r.completed(timing(ms));
        }
        let s = r.snapshot(1);
        assert_eq!((s.submitted, s.completed, s.shed, s.rejected), (4, 3, 1, 1));
        assert_eq!(s.queue_depth, 1);
        assert_eq!(s.mean_batch_size, 3.0);
        assert_eq!(s.p50_ms, 20.0);
        assert_eq!(s.p99_ms, 30.0);
        assert!(s.mean_queue_wait_ms > 0.0 && s.mean_compute_ms > 0.0);
        assert!((s.goodput_fraction() - 0.75).abs() < 1e-12);
        assert!(s.to_string().contains("p99"));
    }

    #[test]
    fn window_rolls_rather_than_grows() {
        let r = Recorder::new();
        for _ in 0..(WINDOW + 10) {
            r.completed(timing(5));
        }
        let s = r.snapshot(0);
        assert_eq!(s.window, WINDOW);
        assert_eq!(s.completed, (WINDOW + 10) as u64);
    }
}
