//! Offline stand-in for the `crossbeam-channel` crate (no registry access
//! in this build environment; see `shims/README.md`).
//!
//! Covers the surface this workspace uses: **bounded** multi-producer
//! multi-consumer channels with non-blocking, blocking and timed
//! operations —
//!
//! * [`bounded`] — a fixed-capacity FIFO ring shared by any number of
//!   cloned [`Sender`]s and [`Receiver`]s,
//! * [`Sender::try_send`] / [`Sender::send`] — admission without / with
//!   blocking on a full ring,
//! * [`Receiver::try_recv`] / [`Receiver::recv`] /
//!   [`Receiver::recv_timeout`] — the consumer side, with the timed
//!   variant a serving worker's idle tick is built on.
//!
//! The implementation is a `Mutex<VecDeque>` + two `Condvar`s rather than
//! crossbeam's lock-free ring: correctness and API compatibility over
//! throughput (the workloads queueing through this shim are matrix
//! multiplications — microseconds to milliseconds each — so channel
//! overhead is noise). `select!` and unbounded channels are deliberate
//! gaps: nothing in-tree uses them.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Create a bounded MPMC channel with room for `cap` messages.
///
/// `cap` must be non-zero: zero-capacity rendezvous channels are part of
/// the real crate but not of the surface this workspace uses.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap > 0, "bounded: capacity must be non-zero");
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::with_capacity(cap),
            senders: 1,
            receivers: 1,
        }),
        cap,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

struct Inner<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    cap: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Error returned by [`Sender::try_send`].
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is at capacity; the message is handed back.
    Full(T),
    /// Every receiver is gone; the message is handed back.
    Disconnected(T),
}

impl<T> TrySendError<T> {
    /// Recover the message that could not be sent.
    pub fn into_inner(self) -> T {
        match self {
            TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
        }
    }
}

impl<T> std::fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TrySendError::Full(_) => "sending on a full channel",
            TrySendError::Disconnected(_) => "sending on a disconnected channel",
        })
    }
}

impl<T: std::fmt::Debug> std::error::Error for TrySendError<T> {}

/// Error returned by [`Sender::send`]: every receiver is gone.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

impl std::fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TryRecvError::Empty => "receiving on an empty channel",
            TryRecvError::Disconnected => "receiving on an empty and disconnected channel",
        })
    }
}

impl std::error::Error for TryRecvError {}

/// Error returned by [`Receiver::recv`]: the channel is empty and every
/// sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

impl std::fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RecvTimeoutError::Timeout => "timed out waiting on a channel",
            RecvTimeoutError::Disconnected => "receiving on an empty and disconnected channel",
        })
    }
}

impl std::error::Error for RecvTimeoutError {}

/// The producing half of a channel; clone freely (multi-producer).
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The consuming half of a channel; clone freely (multi-consumer).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Push a message without blocking; a full ring hands it back as
    /// [`TrySendError::Full`].
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        if inner.receivers == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        if inner.queue.len() >= self.shared.cap {
            return Err(TrySendError::Full(msg));
        }
        inner.queue.push_back(msg);
        drop(inner);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Push a message, blocking while the ring is full.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        loop {
            if inner.receivers == 0 {
                return Err(SendError(msg));
            }
            if inner.queue.len() < self.shared.cap {
                inner.queue.push_back(msg);
                drop(inner);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            inner = self.shared.not_full.wait(inner).expect("channel poisoned");
        }
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.shared
            .inner
            .lock()
            .expect("channel poisoned")
            .queue
            .len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The fixed capacity this channel was created with.
    pub fn capacity(&self) -> Option<usize> {
        Some(self.shared.cap)
    }
}

impl<T> Receiver<T> {
    /// Pop the oldest message without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        match inner.queue.pop_front() {
            Some(v) => {
                drop(inner);
                self.shared.not_full.notify_one();
                Ok(v)
            }
            None if inner.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Pop the oldest message, blocking until one arrives or every sender
    /// is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        loop {
            if let Some(v) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self.shared.not_empty.wait(inner).expect("channel poisoned");
        }
    }

    /// Pop the oldest message, blocking up to `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        loop {
            if let Some(v) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            let Some(remaining) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                return Err(RecvTimeoutError::Timeout);
            };
            let (guard, _) = self
                .shared
                .not_empty
                .wait_timeout(inner, remaining)
                .expect("channel poisoned");
            inner = guard;
        }
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.shared
            .inner
            .lock()
            .expect("channel poisoned")
            .queue
            .len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The fixed capacity this channel was created with.
    pub fn capacity(&self) -> Option<usize> {
        Some(self.shared.cap)
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.inner.lock().expect("channel poisoned").senders += 1;
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared
            .inner
            .lock()
            .expect("channel poisoned")
            .receivers += 1;
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        inner.senders -= 1;
        let last = inner.senders == 0;
        drop(inner);
        if last {
            // Blocked receivers must observe the disconnect.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.inner.lock().expect("channel poisoned");
        inner.receivers -= 1;
        let last = inner.receivers == 0;
        drop(inner);
        if last {
            // Blocked senders must observe the disconnect.
            self.shared.not_full.notify_all();
        }
    }
}

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sender").finish_non_exhaustive()
    }
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Receiver").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fifo_order_and_capacity_bound() {
        let (tx, rx) = bounded::<u32>(3);
        assert_eq!(tx.capacity(), Some(3));
        for v in [1, 2, 3] {
            tx.try_send(v).unwrap();
        }
        assert_eq!(tx.try_send(4), Err(TrySendError::Full(4)));
        assert_eq!(rx.len(), 3);
        assert_eq!(rx.try_recv(), Ok(1));
        tx.try_send(4).unwrap();
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Ok(3));
        assert_eq!(rx.try_recv(), Ok(4));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        assert!(rx.is_empty() && tx.is_empty());
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = bounded::<u8>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.try_send(7).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
    }

    #[test]
    fn disconnect_is_observed_on_both_sides() {
        let (tx, rx) = bounded::<u8>(2);
        tx.try_send(1).unwrap();
        drop(tx);
        // Queued messages drain first, then the disconnect shows.
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );

        let (tx, rx) = bounded::<u8>(1);
        drop(rx);
        assert_eq!(tx.try_send(9), Err(TrySendError::Disconnected(9)));
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn mpmc_under_contention_delivers_every_message_once() {
        let (tx, rx) = bounded::<usize>(4);
        let producers = 4;
        let per_producer = 250;
        let received = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for p in 0..producers {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..per_producer {
                        tx.send(p * per_producer + i).unwrap();
                    }
                });
            }
            drop(tx);
            for _ in 0..2 {
                let rx = rx.clone();
                let received = &received;
                s.spawn(move || {
                    while let Ok(v) = rx.recv() {
                        received.lock().unwrap().push(v);
                    }
                });
            }
        });
        let mut got = received.into_inner().unwrap();
        got.sort_unstable();
        let want: Vec<usize> = (0..producers * per_producer).collect();
        assert_eq!(got, want, "every message exactly once");
    }

    #[test]
    fn blocking_send_resumes_when_room_frees_up() {
        let (tx, rx) = bounded::<u8>(1);
        tx.try_send(1).unwrap();
        std::thread::scope(|s| {
            let tx2 = tx.clone();
            s.spawn(move || tx2.send(2).unwrap());
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv_timeout(Duration::from_millis(500)), Ok(2));
        });
    }
}
