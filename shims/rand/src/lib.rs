//! Offline stand-in for the `rand` crate (no registry access in this build
//! environment; see `shims/README.md`).
//!
//! Implements the surface this workspace uses — `StdRng::seed_from_u64`,
//! `Rng::gen_range` on integer and float ranges, `Rng::gen`, and
//! `SliceRandom::shuffle` — on top of xoshiro256++ seeded via SplitMix64.
//! Streams are deterministic per seed, which is all the workspace relies on
//! (reproducibility, not bit-compatibility with the real `rand::StdRng`).

use std::ops::Range;

/// Low-level entropy source: everything else derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Deterministically build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: Into<UniformRange<T>>,
    {
        let UniformRange { lo, hi } = range.into();
        T::sample(lo, hi, self.next_u64())
    }

    /// Uniform sample of the full domain of `T` (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A half-open `[lo, hi)` interval, converted from `Range<T>`.
pub struct UniformRange<T> {
    lo: T,
    hi: T,
}

impl<T> From<Range<T>> for UniformRange<T> {
    fn from(r: Range<T>) -> Self {
        UniformRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Types uniformly sampleable over a `[lo, hi)` interval.
pub trait SampleUniform: Copy + PartialOrd {
    /// Map 64 random bits into `[lo, hi)`.
    fn sample(lo: Self, hi: Self, bits: u64) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),* $(,)?) => {
        $(
            impl SampleUniform for $t {
                fn sample(lo: Self, hi: Self, bits: u64) -> Self {
                    assert!(lo < hi, "gen_range: empty range");
                    let span = (hi as u128).wrapping_sub(lo as u128) as u128;
                    lo.wrapping_add((bits as u128 % span) as $t)
                }
            }
        )*
    };
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f32 {
    fn sample(lo: Self, hi: Self, bits: u64) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let unit = (bits >> 40) as f32 / (1u64 << 24) as f32; // 24-bit mantissa fill
        lo + (hi - lo) * unit
    }
}

impl SampleUniform for f64 {
    fn sample(lo: Self, hi: Self, bits: u64) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let unit = (bits >> 11) as f64 / (1u64 << 53) as f64;
        lo + (hi - lo) * unit
    }
}

/// Types producible from raw random bits via [`Rng::gen`].
pub trait Standard {
    /// Build a value from 64 uniformly random bits.
    fn from_bits(bits: u64) -> Self;
}

impl Standard for u64 {
    fn from_bits(bits: u64) -> Self {
        bits
    }
}

impl Standard for u32 {
    fn from_bits(bits: u64) -> Self {
        (bits >> 32) as u32
    }
}

impl Standard for bool {
    fn from_bits(bits: u64) -> Self {
        bits & 1 == 1
    }
}

impl Standard for f32 {
    fn from_bits(bits: u64) -> Self {
        (bits >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for f64 {
    fn from_bits(bits: u64) -> Self {
        (bits >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator seeded through SplitMix64 — the shim's
    /// stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding procedure.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Slice shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Uniform Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v: f32 = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&v));
            let u: usize = rng.gen_range(0..16usize);
            assert!(u < 16);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut xs: Vec<u32> = (0..32).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn integer_range_covers_every_value() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
