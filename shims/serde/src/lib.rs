//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this workspace has no access to a crates
//! registry, so the external dependencies declared in the manifests are
//! backed by small local shims (see `shims/README.md`). This one covers the
//! exact `serde` surface the workspace uses: the `Serialize` / `Deserialize`
//! traits as derive targets on plain-old-data config and report types.
//!
//! Nothing in the workspace currently drives an actual serializer (there is
//! no `serde_json` dependency; the on-disk container format in
//! `nm_core::serialize` is hand-rolled binary). The traits are therefore
//! markers: deriving them compiles and records the intent, and swapping this
//! shim for the real `serde` later is a manifest-only change.

/// Marker form of `serde::Serialize`.
///
/// Derivable via `#[derive(Serialize)]`; carries no methods because no code
/// path in the workspace invokes a serializer.
pub trait Serialize {}

/// Marker form of `serde::Deserialize`.
///
/// Derivable via `#[derive(Deserialize)]`; carries no methods because no
/// code path in the workspace invokes a deserializer.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_primitives {
    ($($t:ty),* $(,)?) => {
        $(
            impl Serialize for $t {}
            impl<'de> Deserialize<'de> for $t {}
        )*
    };
}

impl_primitives!(
    bool, char, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, String
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}
impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>, C: Deserialize<'de>> Deserialize<'de>
    for (A, B, C)
{
}
