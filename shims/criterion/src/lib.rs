//! Offline stand-in for the `criterion` crate (no registry access in this
//! build environment; see `shims/README.md`).
//!
//! Keeps criterion's API shape (`criterion_group!` / `criterion_main!`,
//! benchmark groups, `Bencher::iter`) but replaces the statistics engine
//! with a simple warmup + timed-samples loop that reports mean/min time per
//! iteration and derived throughput. Good enough to keep the workspace's
//! benches compiling and producing honest relative numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value barrier (std-backed).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Two-part benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a parameter value.
    pub fn new<P: Display>(function: &str, parameter: P) -> Self {
        Self {
            name: format!("{function}/{parameter}"),
        }
    }
}

/// Per-iteration timing driver handed to bench closures.
pub struct Bencher {
    samples: usize,
    total: Duration,
    min: Duration,
    iters: u64,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Self {
            samples,
            total: Duration::ZERO,
            min: Duration::MAX,
            iters: 0,
        }
    }

    /// Run the routine once for warmup, then `sample_size` timed samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warmup + result sink
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            let dt = t0.elapsed();
            self.total += dt;
            self.min = self.min.min(dt);
            self.iters += 1;
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (criterion default: 100; the
    /// shim default is 20 to keep `cargo bench` quick).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate throughput; reported as elem/s or MiB/s per benchmark.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        self.report(id, &b);
        self
    }

    /// Benchmark a closure that receives an input by reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        self.report(&id.name, &b);
        self
    }

    /// End the group (prints nothing extra; kept for API parity).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, b: &Bencher) {
        if b.iters == 0 {
            println!("{}/{id}: no samples", self.name);
            return;
        }
        let mean = b.total / b.iters as u32;
        let extra = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:.3e} elem/s", n as f64 / mean.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) => format!(
                "  {:.1} MiB/s",
                n as f64 / mean.as_secs_f64() / (1024.0 * 1024.0)
            ),
            None => String::new(),
        };
        println!(
            "{}/{id}: mean {:?}  min {:?}  ({} samples){extra}",
            self.name, mean, b.min, b.iters
        );
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 20,
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declare a bench group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_requested_samples() {
        let mut b = Bencher::new(5);
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        assert_eq!(calls, 6, "1 warmup + 5 samples");
        assert_eq!(b.iters, 5);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(2).throughput(Throughput::Elements(10));
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("with_input", 3), &3usize, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
    }
}
