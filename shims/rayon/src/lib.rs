//! Offline stand-in for the `rayon` crate (no registry access in this build
//! environment; see `shims/README.md`).
//!
//! Covers the surface this workspace uses and keeps it genuinely parallel
//! with `std::thread::scope` instead of a work-stealing pool:
//!
//! * `slice.par_chunks_mut(n).enumerate().for_each(f)` — each worker thread
//!   owns a contiguous run of chunks,
//! * `range.into_par_iter().map(f).collect()` / `.for_each(f)` — the index
//!   space is split into one contiguous span per worker.
//!
//! Work is split eagerly into `available_parallelism()` spans, which is the
//! right shape for the regular, equal-cost blocks these kernels produce.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Global worker cap installed by [`ThreadPoolBuilder::build_global`];
/// `0` means uncapped (use the hardware parallelism).
static GLOBAL_THREAD_CAP: AtomicUsize = AtomicUsize::new(0);

/// Whether [`ThreadPoolBuilder::build_global`] already ran (it is
/// first-wins, like real rayon's global pool initialization).
static GLOBAL_POOL_BUILT: AtomicUsize = AtomicUsize::new(0);

/// The number of worker threads the shim will fan out to at most —
/// mirrors `rayon::current_num_threads`.
pub fn current_num_threads() -> usize {
    let hw = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    match GLOBAL_THREAD_CAP.load(Ordering::Relaxed) {
        0 => hw,
        cap => cap.min(hw),
    }
}

/// Error returned when the global pool was already initialized — mirrors
/// `rayon::ThreadPoolBuildError`.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("the global thread pool has already been initialized")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Mirror of `rayon::ThreadPoolBuilder`, reduced to the one knob the shim
/// can honor: a cap on how many worker threads a parallel call fans out
/// to. The shim spawns scoped threads per call rather than keeping a
/// pool, so the cap is the entire configuration.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with the default (uncapped) configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cap the worker count; `0` keeps the hardware default.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Install the configuration globally. First call wins; later calls
    /// fail with [`ThreadPoolBuildError`], matching real rayon's
    /// first-initialization-wins semantics for the global pool.
    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        if GLOBAL_POOL_BUILT.swap(1, Ordering::SeqCst) != 0 {
            return Err(ThreadPoolBuildError);
        }
        GLOBAL_THREAD_CAP.store(self.num_threads, Ordering::Relaxed);
        Ok(())
    }
}

/// Number of worker threads to fan out to for `n` independent items.
fn workers_for(n: usize) -> usize {
    current_num_threads().min(n).max(1)
}

/// Split `0..n` into at most `parts` contiguous, near-equal spans.
fn spans(n: usize, parts: usize) -> Vec<(usize, usize)> {
    let parts = parts.min(n).max(1);
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut lo = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push((lo, lo + len));
        lo += len;
    }
    out
}

/// Parallel mutable chunking of slices, mirroring `rayon::slice::ParallelSliceMut`.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel counterpart of `chunks_mut`.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(
            chunk_size > 0,
            "par_chunks_mut: chunk size must be non-zero"
        );
        ParChunksMut {
            slice: self,
            chunk_size,
        }
    }
}

/// Parallel iterator over mutable chunks of a slice.
pub struct ParChunksMut<'a, T> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pair each chunk with its index.
    pub fn enumerate(self) -> EnumerateChunksMut<'a, T> {
        EnumerateChunksMut { inner: self }
    }

    /// Run `f` on every chunk across worker threads.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

/// Index-carrying parallel iterator over mutable chunks.
pub struct EnumerateChunksMut<'a, T> {
    inner: ParChunksMut<'a, T>,
}

impl<T: Send> EnumerateChunksMut<'_, T> {
    /// Run `f(chunk_index, chunk)` on every chunk across worker threads.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let chunk_size = self.inner.chunk_size;
        let chunks: Vec<(usize, &mut [T])> = self
            .inner
            .slice
            .chunks_mut(chunk_size)
            .enumerate()
            .collect();
        let n = chunks.len();
        if n <= 1 {
            for item in chunks {
                f(item);
            }
            return;
        }
        let mut buckets: Vec<Vec<(usize, &mut [T])>> = spans(n, workers_for(n))
            .iter()
            .map(|_| Vec::new())
            .collect();
        let parts = buckets.len();
        for (i, item) in chunks.into_iter().enumerate() {
            buckets[i * parts / n.max(1)].push(item);
        }
        std::thread::scope(|scope| {
            for bucket in buckets {
                let f = &f;
                scope.spawn(move || {
                    for item in bucket {
                        f(item);
                    }
                });
            }
        });
    }
}

/// Conversion into a parallel iterator, mirroring `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// The parallel iterator produced.
    type Iter;
    /// Convert `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = ParRange;

    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// Parallel iterator over a `Range<usize>`.
pub struct ParRange {
    range: std::ops::Range<usize>,
}

impl ParRange {
    /// Parallel map over the index space.
    pub fn map<T, F>(self, f: F) -> ParMap<F>
    where
        F: Fn(usize) -> T + Sync,
        T: Send,
    {
        ParMap {
            range: self.range,
            f,
        }
    }

    /// Run `f` for every index across worker threads.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        self.map(f).run();
    }
}

/// Mapped parallel range, consumed by [`ParMap::collect`].
pub struct ParMap<F> {
    range: std::ops::Range<usize>,
    f: F,
}

impl<F> ParMap<F> {
    fn run_vec<T>(self) -> Vec<T>
    where
        F: Fn(usize) -> T + Sync,
        T: Send,
    {
        let lo = self.range.start;
        let n = self.range.end.saturating_sub(lo);
        if n <= 1 {
            return self.range.map(self.f).collect();
        }
        let f = &self.f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = spans(n, workers_for(n))
                .into_iter()
                .map(|(a, b)| scope.spawn(move || (lo + a..lo + b).map(f).collect::<Vec<T>>()))
                .collect();
            let mut out = Vec::with_capacity(n);
            for h in handles {
                out.extend(h.join().expect("rayon shim worker panicked"));
            }
            out
        })
    }

    fn run<T>(self)
    where
        F: Fn(usize) -> T + Sync,
        T: Send,
    {
        let _ = self.run_vec();
    }

    /// Gather results in index order.
    pub fn collect<C, T>(self) -> C
    where
        F: Fn(usize) -> T + Sync,
        T: Send,
        C: FromIterator<T>,
    {
        self.run_vec().into_iter().collect()
    }
}

/// Glob-import module, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_mut_visits_every_chunk_once() {
        let mut data = vec![0u32; 103];
        data.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v += 1 + i as u32;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, 1 + (i / 10) as u32, "element {i}");
        }
    }

    #[test]
    fn par_map_collect_preserves_order() {
        let got: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        let want: Vec<usize> = (0..1000).map(|i| i * 2).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn global_pool_is_first_wins_and_caps_workers() {
        // First build_global succeeds and installs the cap; the second
        // fails like real rayon. (Runs in one process with the other
        // tests, so the assertions only rely on first-wins semantics.)
        let first = crate::ThreadPoolBuilder::new()
            .num_threads(2)
            .build_global();
        let second = crate::ThreadPoolBuilder::new()
            .num_threads(8)
            .build_global();
        assert!(second.is_err() || first.is_ok());
        if first.is_ok() {
            assert!(crate::current_num_threads() <= 2);
        }
        assert!(crate::current_num_threads() >= 1);
        // Parallel calls still visit everything under the cap.
        let mut data = [0u8; 50];
        data.par_chunks_mut(7).for_each(|c| c.fill(1));
        assert!(data.iter().all(|&v| v == 1));
    }

    #[test]
    fn empty_and_single_inputs() {
        let got: Vec<usize> = (5..5).into_par_iter().map(|i| i).collect();
        assert!(got.is_empty());
        let got: Vec<usize> = (5..6).into_par_iter().map(|i| i).collect();
        assert_eq!(got, vec![5]);
        let mut one = [1u8; 3];
        one.par_chunks_mut(8).enumerate().for_each(|(_, c)| {
            for v in c.iter_mut() {
                *v = 9;
            }
        });
        assert_eq!(one, [9, 9, 9]);
    }
}
