//! Offline stand-in for `serde_derive`: emits marker-trait impls for the
//! `serde` shim without pulling in `syn`/`quote` (no registry access).
//!
//! The parser walks the raw token stream just far enough to find the type
//! name after `struct` / `enum`. Generic type definitions are rejected with
//! a compile error rather than silently mis-expanded — nothing in this
//! workspace derives serde traits on a generic type.

use proc_macro::{TokenStream, TokenTree};

/// Extract the type identifier following `struct` or `enum`, skipping outer
/// attributes and visibility modifiers. Returns `Err` with a description if
/// the item shape is unsupported (e.g. generic or union types).
fn type_name(input: TokenStream) -> Result<String, String> {
    let mut iter = input.into_iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            // `#[...]` outer attribute: consume the bracket group that follows.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next();
            }
            TokenTree::Ident(id) => {
                let word = id.to_string();
                if word == "struct" || word == "enum" {
                    let name = match iter.next() {
                        Some(TokenTree::Ident(name)) => name.to_string(),
                        other => return Err(format!("expected type name, found {other:?}")),
                    };
                    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
                        return Err(format!(
                            "the serde shim derive does not support generic type `{name}`"
                        ));
                    }
                    return Ok(name);
                }
                // `pub`, `pub(crate)` and similar: keep scanning.
            }
            _ => {}
        }
    }
    Err("no `struct` or `enum` found in derive input".to_string())
}

fn expand(input: TokenStream, make_impl: impl Fn(&str) -> String) -> TokenStream {
    match type_name(input) {
        Ok(name) => make_impl(&name).parse().expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("error parses"),
    }
}

/// Derive the marker `serde::Serialize` for a non-generic struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, |name| {
        format!("impl ::serde::Serialize for {name} {{}}")
    })
}

/// Derive the marker `serde::Deserialize` for a non-generic struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, |name| {
        format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
    })
}
