//! Offline stand-in for the `proptest` crate (no registry access in this
//! build environment; see `shims/README.md`).
//!
//! Implements the subset this workspace's property tests use: the
//! [`strategy::Strategy`] trait with range / tuple / [`strategy::Just`] /
//! [`strategy::Union`] strategies and `prop_map`, the `proptest!` test
//! macro, `prop_oneof!`, `any::<T>()`, and the `prop_assert!` family.
//!
//! Differences from the real crate, deliberately accepted:
//! * no shrinking — a failing case reports its sampled arguments instead,
//! * sampling is driven by a fixed per-test seed (derived from the test
//!   name), so runs are deterministic and reproducible by default.

use std::fmt::{self, Display};

/// Failure raised by the `prop_assert!` macros inside a property body.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Per-test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Deterministic RNG driving case generation.
pub mod test_runner {
    /// SplitMix64 stream seeded from the test's name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Derive a reproducible generator from an arbitrary label.
        pub fn deterministic(label: &str) -> Self {
            // FNV-1a over the label, so each test gets its own stream.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform index in `[0, n)`.
        pub fn index(&mut self, n: usize) -> usize {
            assert!(n > 0, "index over empty domain");
            (self.next_u64() % n as u64) as usize
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// Value-generation strategies, mirroring `proptest::strategy`.
pub mod strategy {
    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// Type of value this strategy produces.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        /// Type-erase into a [`BoxedStrategy`].
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                sample: Rc::new(move |rng| self.sample(rng)),
            }
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Type-erased strategy, the common denominator for `prop_oneof!`.
    #[derive(Clone)]
    pub struct BoxedStrategy<V> {
        sample: Rc<dyn Fn(&mut TestRng) -> V>,
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn sample(&self, rng: &mut TestRng) -> V {
            (self.sample)(rng)
        }
    }

    /// Uniform choice between alternative strategies (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Build from a non-empty list of alternatives.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn sample(&self, rng: &mut TestRng) -> V {
            let i = rng.index(self.options.len());
            self.options[i].sample(rng)
        }
    }

    /// Full-domain strategy returned by [`any`](super::any).
    pub struct AnyStrategy<T> {
        _marker: PhantomData<T>,
    }

    impl<T> Default for AnyStrategy<T> {
        fn default() -> Self {
            Self {
                _marker: PhantomData,
            }
        }
    }

    /// Types with a canonical full-domain distribution.
    pub trait ArbitraryValue {
        /// Draw a value from the type's full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl<T: ArbitraryValue> Strategy for AnyStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),* $(,)?) => {
            $(
                impl ArbitraryValue for $t {
                    fn arbitrary(rng: &mut TestRng) -> Self {
                        rng.next_u64() as $t
                    }
                }
            )*
        };
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbitraryValue for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_range_int {
        ($($t:ty),* $(,)?) => {
            $(
                impl Strategy for Range<$t> {
                    type Value = $t;

                    fn sample(&self, rng: &mut TestRng) -> $t {
                        assert!(self.start < self.end, "empty range strategy");
                        let span = (self.end as u128).wrapping_sub(self.start as u128);
                        self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
                    }
                }

                impl Strategy for RangeInclusive<$t> {
                    type Value = $t;

                    fn sample(&self, rng: &mut TestRng) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "empty range strategy");
                        let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                        lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
                    }
                }
            )*
        };
    }

    impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_range_float {
        ($($t:ty),* $(,)?) => {
            $(
                impl Strategy for Range<$t> {
                    type Value = $t;

                    fn sample(&self, rng: &mut TestRng) -> $t {
                        assert!(self.start < self.end, "empty range strategy");
                        // Cast the unit sample before scaling: casting after can
                        // round up to exactly 1.0 in f32 and break half-openness.
                        let unit = rng.unit_f64() as $t;
                        let v = self.start + (self.end - self.start) * unit;
                        if v >= self.end {
                            self.start
                        } else {
                            v
                        }
                    }
                }
            )*
        };
    }

    impl_range_float!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {
            $(
                impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                    type Value = ($($name::Value,)+);

                    fn sample(&self, rng: &mut TestRng) -> Self::Value {
                        ($(self.$idx.sample(rng),)+)
                    }
                }
            )*
        };
    }

    impl_tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }
}

/// Full-domain strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: strategy::ArbitraryValue>() -> strategy::AnyStrategy<T> {
    strategy::AnyStrategy::default()
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($option)),+
        ])
    };
}

/// Assert a condition inside a property, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a property, failing the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)+), l, r
        );
    }};
}

/// Define property tests, mirroring `proptest::proptest!`.
///
/// Each property runs `config.cases` times with freshly sampled arguments;
/// a `prop_assert!` failure panics with the case number and the sampled
/// arguments (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand $config; $($rest)*);
    };
    (@expand $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut rng);)*
                    let described = format!(
                        concat!($(stringify!($arg), " = {:?}, "),*),
                        $(&$arg),*
                    );
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { { $body }; Ok(()) })();
                    if let Err(err) = outcome {
                        panic!(
                            "property {} failed at case {}/{}:\n  {}\n  with {}",
                            stringify!($name), case + 1, config.cases, err, described
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Glob-import module, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::TestRng;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_oneof, proptest, ProptestConfig};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_sample_in_bounds() {
        let mut rng = TestRng::deterministic("shim-test");
        let s = (1usize..5, 10u64..=20, 0.5f64..2.0);
        for _ in 0..200 {
            let (a, b, c) = s.sample(&mut rng);
            assert!((1..5).contains(&a));
            assert!((10..=20).contains(&b));
            assert!((0.5..2.0).contains(&c));
        }
    }

    #[test]
    fn oneof_and_map_cover_all_arms() {
        let mut rng = TestRng::deterministic("oneof");
        let s = prop_oneof![Just(1u32), Just(2), any::<u32>().prop_map(|x| 3 + (x % 2))];
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[s.sample(&mut rng) as usize % 5] = true;
        }
        assert!(seen[1] && seen[2] && (seen[3] || seen[4]));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: sampled args respect their strategies.
        #[test]
        fn macro_generates_valid_cases(x in 0usize..10, y in 5u64..=6, z in 0.0f64..1.0) {
            prop_assert!(x < 10);
            prop_assert!(y == 5 || y == 6, "y = {}", y);
            prop_assert!((0.0..1.0).contains(&z));
            prop_assert_eq!(x + 1, 1 + x);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_reports_case() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x = {}", x);
            }
        }
        always_fails();
    }
}
