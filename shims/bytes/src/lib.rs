//! Offline stand-in for the `bytes` crate (no registry access in this build
//! environment; see `shims/README.md`).
//!
//! `Bytes` / `BytesMut` are thin wrappers over `Vec<u8>` — no refcounted
//! zero-copy splitting, which nothing here needs — plus the little-endian
//! `Buf` / `BufMut` accessors used by `nm_core::serialize`.

use std::ops::{Deref, DerefMut};

/// Immutable byte buffer (shim: an owned `Vec<u8>`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Copy the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data }
    }
}

/// Growable byte buffer (shim: an owned `Vec<u8>`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

/// Read side of a byte cursor, mirroring `bytes::Buf`.
///
/// Implemented for `&[u8]`: each getter consumes from the front of the
/// slice. Getters panic if the buffer is too short, exactly like the real
/// crate — callers guard with [`Buf::remaining`].
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Consume `dst.len()` bytes into `dst`.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Consume a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Consume a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Consume a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Consume a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.get_u32_le().to_le_bytes())
    }

    /// Consume a single byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.len() >= dst.len(),
            "Buf::copy_to_slice: {} bytes remaining, {} requested",
            self.len(),
            dst.len()
        );
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Write side of a byte buffer, mirroring `bytes::BufMut`.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append a single byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u16_le(513);
        buf.put_u32_le(70_000);
        buf.put_u64_le(1 << 40);
        buf.put_f32_le(-2.5);
        buf.put_slice(b"xyz");
        let frozen = buf.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 513);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_f32_le(), -2.5);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "copy_to_slice")]
    fn short_read_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32_le();
    }

    #[test]
    fn bytes_derefs_to_slice() {
        let b: Bytes = vec![1, 2, 3, 4].into();
        assert_eq!(b.len(), 4);
        assert_eq!(&b[1..3], &[2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3, 4]);
    }
}
